/**
 * @file
 * Content-addressed store of serialized StudyReport JSON, keyed by
 * the request digest. A hit returns the byte-identical string that
 * was put — the serve cache contract is "cached response == freshly
 * computed response", verified by tests/test_serve.cc.
 *
 * Two tiers:
 *  - an in-memory LRU bounded by `capacity` entries (capacity 0
 *    disables the cache entirely: every lookup misses, puts are
 *    dropped);
 *  - an optional on-disk tier (one "<hex digest>.json" file per
 *    entry under `disk_dir`) that survives restarts. Memory misses
 *    fall through to disk and promote back into memory.
 *
 * Disk durability: every entry is written as payload + an FNV-1a
 * digest trailer ("\n#fnv1a:0x<16 hex>\n") via write-to-tmp then
 * rename, and verified against the trailer on every read. An entry
 * that fails verification — truncated by a crash, bit-flipped by the
 * medium — is quarantined (renamed to "<file>.corrupt") and treated
 * as a miss, so bad bytes are never spliced into a response. On
 * construction the disk tier is scrubbed: leftover ".tmp" files are
 * deleted and every entry is verified, evicting corruption before it
 * can meet traffic.
 *
 * Fault points (common/fault.hh): serve.disk.write, serve.disk.read,
 * serve.disk.rename, serve.disk.corrupt, serve.disk.latency.
 *
 * Not internally synchronized: StudyService serializes access under
 * its own lock.
 */

#ifndef STACK3D_SERVE_RESULT_CACHE_HH
#define STACK3D_SERVE_RESULT_CACHE_HH

#include <cstdint>
#include <list>
#include <map>
#include <string>

namespace stack3d {
namespace serve {

/** Activity counters of one ResultCache. */
struct CacheStats
{
    std::uint64_t hits = 0;        ///< lookups served (either tier)
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;   ///< LRU evictions from memory
    std::uint64_t disk_hits = 0;   ///< hits that came from disk
    std::uint64_t disk_writes = 0;
    std::uint64_t corrupt = 0;     ///< entries quarantined (any time)
    std::uint64_t scrubbed = 0;    ///< files examined at startup
};

/** LRU + optional disk result store. See file comment. */
class ResultCache
{
  public:
    /**
     * @param capacity max in-memory entries; 0 disables the cache
     * @param disk_dir directory for the disk tier ("" = memory only);
     *        created on first put if missing
     */
    explicit ResultCache(std::size_t capacity,
                         std::string disk_dir = "");

    /**
     * Look up @p digest; on a hit copies the stored bytes into
     * @p out and marks the entry most-recently-used.
     */
    [[nodiscard]] bool tryGet(std::uint64_t digest, std::string &out);

    /** Store @p report_json under @p digest (no-op when disabled). */
    void put(std::uint64_t digest, const std::string &report_json);

    std::size_t size() const { return _entries.size(); }
    const CacheStats &stats() const { return _stats; }

  private:
    struct Entry
    {
        std::list<std::uint64_t>::iterator order;
        std::string json;
    };

    std::string diskPath(std::uint64_t digest) const;
    void insert(std::uint64_t digest, const std::string &report_json);
    void scrubDiskTier();
    void quarantine(const std::string &path);
    /** Read + verify one disk entry; quarantines on corruption. */
    [[nodiscard]] bool readDiskEntry(const std::string &path,
                                     std::string &payload);

    std::size_t _capacity;
    std::string _dir;
    bool _dir_ready = false;
    std::list<std::uint64_t> _order;   ///< front = most recent
    std::map<std::uint64_t, Entry> _entries;
    CacheStats _stats;
};

} // namespace serve
} // namespace stack3d

#endif // STACK3D_SERVE_RESULT_CACHE_HH
