#include "serve/metrics_http.hh"

#include <cerrno>
#include <cstring>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include "common/logging.hh"
#include "exec/pool.hh"

namespace stack3d {
namespace serve {

namespace {

void
sendAllHttp(int fd, const std::string &data)
{
    std::size_t sent = 0;
    while (sent < data.size()) {
        ssize_t n = ::send(fd, data.data() + sent,
                           data.size() - sent, MSG_NOSIGNAL);
        if (n <= 0)
            return;
        sent += std::size_t(n);
    }
}

std::string
statusLine(int code)
{
    switch (code) {
      case 200:
        return "HTTP/1.1 200 OK\r\n";
      case 404:
        return "HTTP/1.1 404 Not Found\r\n";
      case 405:
        return "HTTP/1.1 405 Method Not Allowed\r\n";
      default:
        return "HTTP/1.1 400 Bad Request\r\n";
    }
}

std::string
httpResponse(int code, const std::string &content_type,
             const std::string &body)
{
    std::string out = statusLine(code);
    out += "Content-Type: " + content_type + "\r\n";
    out += "Content-Length: " + std::to_string(body.size()) + "\r\n";
    out += "Connection: close\r\n\r\n";
    out += body;
    return out;
}

} // anonymous namespace

MetricsHttpServer::MetricsHttpServer() = default;

MetricsHttpServer::~MetricsHttpServer()
{
    stop();
}

void
MetricsHttpServer::addRoute(std::string path, std::string content_type,
                            Renderer renderer)
{
    _routes.push_back(Route{std::move(path), std::move(content_type),
                            std::move(renderer)});
}

bool
MetricsHttpServer::start(unsigned port)
{
    _listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (_listen_fd < 0) {
        warn("metrics endpoint: socket() failed: ",
             std::strerror(errno));
        return false;
    }
    int reuse = 1;
    ::setsockopt(_listen_fd, SOL_SOCKET, SO_REUSEADDR, &reuse,
                 sizeof(reuse));

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(std::uint16_t(port));
    if (::bind(_listen_fd, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) != 0 ||
        ::listen(_listen_fd, 8) != 0) {
        warn("metrics endpoint: cannot bind 127.0.0.1:", port, ": ",
             std::strerror(errno));
        ::close(_listen_fd);
        _listen_fd = -1;
        return false;
    }

    sockaddr_in bound{};
    socklen_t bound_len = sizeof(bound);
    if (::getsockname(_listen_fd,
                      reinterpret_cast<sockaddr *>(&bound),
                      &bound_len) == 0)
        _bound_port = ntohs(bound.sin_port);

    if (::pipe(_wake_pipe) != 0) {
        warn("metrics endpoint: pipe() failed: ",
             std::strerror(errno));
        ::close(_listen_fd);
        _listen_fd = -1;
        return false;
    }

    logLine(LogLevel::Info, "metrics endpoint listening",
            {{"port", std::to_string(_bound_port)}});

    _pool = std::make_unique<exec::ThreadPool>(1);
    (void)_pool->submit([this] { serveLoop(); });
    return true;
}

void
MetricsHttpServer::stop()
{
    if (_wake_pipe[1] >= 0) {
        char byte = 1;
        (void)!::write(_wake_pipe[1], &byte, 1);
    }
    // The pool destructor joins after the loop drains.
    _pool.reset();
    for (int *fd : {&_listen_fd, &_wake_pipe[0], &_wake_pipe[1]}) {
        if (*fd >= 0) {
            ::close(*fd);
            *fd = -1;
        }
    }
}

void
MetricsHttpServer::serveLoop()
{
    for (;;) {
        pollfd waits[2] = {{_listen_fd, POLLIN, 0},
                           {_wake_pipe[0], POLLIN, 0}};
        int ready = ::poll(waits, 2, -1);
        if (ready < 0) {
            if (errno == EINTR)
                continue;
            return;
        }
        if (waits[1].revents != 0)
            return;   // stop() woke us
        if ((waits[0].revents & (POLLIN | POLLERR | POLLHUP)) == 0)
            continue;
        int fd = ::accept(_listen_fd, nullptr, nullptr);
        if (fd < 0) {
            if (errno == EINTR)
                continue;
            return;
        }
        answer(fd);
    }
}

void
MetricsHttpServer::answer(int fd)
{
    // A scraper sends its whole request promptly or not at all; a
    // short receive timeout keeps a stuck client from wedging the
    // single-threaded loop.
    timeval timeout{};
    timeout.tv_usec = 500 * 1000;
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout,
                 sizeof(timeout));

    std::string request;
    char chunk[2048];
    while (request.find("\r\n") == std::string::npos &&
           request.size() < 8192) {
        ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
        if (n <= 0)
            break;
        request.append(chunk, std::size_t(n));
    }

    // "GET /path HTTP/1.1" — only the request line matters.
    std::size_t line_end = request.find("\r\n");
    std::string line = line_end == std::string::npos
                           ? request
                           : request.substr(0, line_end);
    std::size_t sp1 = line.find(' ');
    std::size_t sp2 =
        sp1 == std::string::npos ? std::string::npos
                                 : line.find(' ', sp1 + 1);
    if (sp1 == std::string::npos || sp2 == std::string::npos) {
        sendAllHttp(fd, httpResponse(400, "text/plain",
                                     "bad request\n"));
        ::close(fd);
        return;
    }
    std::string method = line.substr(0, sp1);
    std::string path = line.substr(sp1 + 1, sp2 - sp1 - 1);
    std::size_t query = path.find('?');
    if (query != std::string::npos)
        path.erase(query);

    if (method != "GET") {
        sendAllHttp(fd, httpResponse(405, "text/plain",
                                     "GET only\n"));
        ::close(fd);
        return;
    }
    for (const Route &route : _routes) {
        if (route.path == path) {
            sendAllHttp(fd, httpResponse(200, route.content_type,
                                         route.renderer()));
            ::close(fd);
            return;
        }
    }
    sendAllHttp(fd, httpResponse(404, "text/plain", "not found\n"));
    ::close(fd);
}

} // namespace serve
} // namespace stack3d
