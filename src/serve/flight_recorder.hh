/**
 * @file
 * FlightRecorder — the last N request summaries of a running
 * stack3d-serve daemon, kept in a fixed ring for crash-adjacent
 * forensics. When a watchdog flags a wedged execution, when SIGUSR1
 * arrives, or when an operator sends {"op":"flight"}, the recent
 * request history — trace IDs, digests, statuses, queue depths,
 * latencies — is what turns "it got slow" into a diagnosis.
 *
 * Entries are appended at request completion (every terminal status,
 * including rejections — shed load is exactly what a post-mortem
 * needs to see). The ring is mutex-guarded: appends happen once per
 * request on paths that already take the service lock, and dumps are
 * rare, so a lock is the right cost here (unlike the per-sample
 * histogram path).
 */

#ifndef STACK3D_SERVE_FLIGHT_RECORDER_HH
#define STACK3D_SERVE_FLIGHT_RECORDER_HH

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace stack3d {

class JsonWriter;

namespace serve {

/** One completed request's summary. */
struct FlightEntry
{
    std::uint64_t seq = 0;        ///< service-wide request ordinal
    std::string trace_id;
    std::string digest_hex;       ///< "0x..." ("" if unparsable)
    std::string study;            ///< study kind ("" for op lines)
    std::string status;           ///< ok/error/rejected/timeout
    bool cached = false;
    bool coalesced = false;
    double latency_ms = 0.0;
    unsigned queue_depth = 0;     ///< in-flight count at completion
};

/** Fixed ring of recent FlightEntry records. Thread-safe. */
class FlightRecorder
{
  public:
    explicit FlightRecorder(std::size_t capacity);

    /** Append one summary (overwrites the oldest once full). */
    void note(FlightEntry entry);

    /** Entries oldest-first (at most `capacity`). */
    std::vector<FlightEntry> entries() const;

    /** Total requests ever noted (ring wraps; this does not). */
    std::uint64_t noted() const;

    std::size_t capacity() const { return _capacity; }

    /**
     * Emit as one JSON array value of entry objects, oldest first —
     * the payload of the {"op":"flight"} response.
     */
    void writeJson(JsonWriter &w) const;

    /**
     * Dump every entry through the structured logger (one line per
     * entry plus a header) — the SIGUSR1 / watchdog-flag path, which
     * must work when no client is attached to ask for JSON.
     */
    void dumpToLog(const std::string &reason) const;

  private:
    const std::size_t _capacity;
    mutable std::mutex _mutex;
    std::vector<FlightEntry> _ring;
    std::size_t _next = 0;        ///< slot the next note() fills
    std::uint64_t _noted = 0;
};

} // namespace serve
} // namespace stack3d

#endif // STACK3D_SERVE_FLIGHT_RECORDER_HH
