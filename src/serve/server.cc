#include "serve/server.hh"

#include <atomic>
#include <cerrno>
#include <cstring>
#include <istream>
#include <ostream>
#include <sstream>
#include <string>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "common/json.hh"
#include "common/json_parse.hh"
#include "common/logging.hh"
#include "exec/pool.hh"
#include "obs/provenance.hh"

namespace stack3d {
namespace serve {

namespace {

/** Non-request control line ({"op": ...}), if this line is one. */
enum class ControlOp { None, Stop, Counters };

ControlOp
classifyLine(const std::string &line)
{
    // Cheap pre-filter: every control line mentions "op".
    if (line.find("\"op\"") == std::string::npos)
        return ControlOp::None;
    JsonValue root;
    std::string error;
    if (!parseJson(line, root, error) || !root.isObject())
        return ControlOp::None;
    const JsonValue *op = root.find("op");
    if (!op || !op->isString())
        return ControlOp::None;
    if (op->string == "stop")
        return ControlOp::Stop;
    if (op->string == "counters")
        return ControlOp::Counters;
    return ControlOp::None;
}

std::string
countersLine(const StudyService &service)
{
    std::ostringstream os;
    JsonWriter w(os, /*compact=*/true);
    w.beginObject();
    w.key("schema_version").value(unsigned(obs::kSchemaVersion));
    w.key("status").value("ok");
    w.key("counters");
    obs::writeCountersJson(w, service.counters());
    w.endObject();
    return os.str();
}

std::string
stopLine()
{
    return "{\"schema_version\":" +
           std::to_string(obs::kSchemaVersion) +
           ",\"status\":\"ok\",\"stopping\":true}";
}

/**
 * Handle one protocol line; returns false when it was a stop op
 * (after emitting the acknowledgement via @p emit).
 */
template <typename EmitFn>
bool
handleLine(StudyService &service, const std::string &line,
           EmitFn &&emit)
{
    switch (classifyLine(line)) {
      case ControlOp::Stop:
        emit(stopLine());
        return false;
      case ControlOp::Counters:
        emit(countersLine(service));
        return true;
      case ControlOp::None:
        break;
    }
    emit(service.handle(line).line);
    return true;
}

bool
isBlank(const std::string &line)
{
    return line.find_first_not_of(" \t\r") == std::string::npos;
}

} // anonymous namespace

std::uint64_t
runPipeServer(StudyService &service, std::istream &in,
              std::ostream &out)
{
    std::uint64_t handled = 0;
    std::string line;
    while (std::getline(in, line)) {
        if (isBlank(line))
            continue;
        ++handled;
        bool keep_going = handleLine(
            service, line, [&out](const std::string &response) {
                out << response << "\n";
                out.flush();
            });
        if (!keep_going)
            break;
    }
    return handled;
}

namespace {

/** Loop ::send until @p data is fully written (or the peer is gone). */
void
sendAll(int fd, const std::string &data)
{
    std::size_t sent = 0;
    while (sent < data.size()) {
        ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
                           MSG_NOSIGNAL);
        if (n <= 0)
            return;
        sent += std::size_t(n);
    }
}

/** Shared shutdown handshake between connections and the acceptor. */
struct ServerState
{
    std::atomic<bool> stopping{false};
    int listen_fd = -1;
};

void
handleConnection(StudyService &service, ServerState &state, int fd)
{
    std::string buffer;
    char chunk[4096];
    bool open = true;
    while (open) {
        ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
        if (n <= 0)
            break;
        buffer.append(chunk, std::size_t(n));
        std::size_t newline;
        while (open &&
               (newline = buffer.find('\n')) != std::string::npos) {
            std::string line = buffer.substr(0, newline);
            buffer.erase(0, newline + 1);
            if (isBlank(line))
                continue;
            bool keep_going =
                handleLine(service, line,
                           [fd](const std::string &response) {
                               sendAll(fd, response + "\n");
                           });
            if (!keep_going) {
                // Stop: wake the acceptor out of accept().
                state.stopping.store(true);
                ::shutdown(state.listen_fd, SHUT_RDWR);
                open = false;
            }
        }
    }
    ::close(fd);
}

} // anonymous namespace

int
runTcpServer(StudyService &service, unsigned port,
             unsigned connection_threads)
{
    int listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd < 0) {
        warn("stack3d-serve: socket() failed: ",
             std::strerror(errno));
        return 1;
    }
    int reuse = 1;
    ::setsockopt(listen_fd, SOL_SOCKET, SO_REUSEADDR, &reuse,
                 sizeof(reuse));

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(std::uint16_t(port));
    if (::bind(listen_fd, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) != 0) {
        warn("stack3d-serve: cannot bind 127.0.0.1:", port, ": ",
             std::strerror(errno));
        ::close(listen_fd);
        return 1;
    }
    if (::listen(listen_fd, 64) != 0) {
        warn("stack3d-serve: listen() failed: ",
             std::strerror(errno));
        ::close(listen_fd);
        return 1;
    }

    sockaddr_in bound{};
    socklen_t bound_len = sizeof(bound);
    if (::getsockname(listen_fd,
                      reinterpret_cast<sockaddr *>(&bound),
                      &bound_len) == 0) {
        inform("stack3d-serve: listening on 127.0.0.1:",
               ntohs(bound.sin_port));
    }

    ServerState state;
    state.listen_fd = listen_fd;
    {
        exec::ThreadPool connections(connection_threads);
        while (!state.stopping.load()) {
            int fd = ::accept(listen_fd, nullptr, nullptr);
            if (fd < 0) {
                if (state.stopping.load() || errno != EINTR)
                    break;
                continue;
            }
            // The future is intentionally dropped; the pool drains
            // every connection before it is destroyed.
            (void)connections.submit([&service, &state, fd] {
                handleConnection(service, state, fd);
            });
        }
    }
    ::close(listen_fd);
    return 0;
}

} // namespace serve
} // namespace stack3d
