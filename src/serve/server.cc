#include "serve/server.hh"

#include <atomic>
#include <cerrno>
#include <cstring>
#include <istream>
#include <ostream>
#include <sstream>
#include <string>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include "common/json.hh"
#include "common/json_parse.hh"
#include "common/logging.hh"
#include "exec/pool.hh"
#include "obs/provenance.hh"

namespace stack3d {
namespace serve {

namespace {

std::atomic<bool> g_shutdown_requested{false};

/**
 * Self-pipe for the classic signal race: a handler that only sets a
 * flag cannot wake a loop already blocked in accept()/poll(). The
 * pipe is created at load time (before main() can install handlers),
 * and requestShutdown() writes one byte — poll()ing the read end
 * plus the listen socket makes shutdown delivery race-free.
 */
// Written once by the load-time initializer below, read-only after
// (including from the signal handler), so unsynchronized access is
// safe.
int g_shutdown_pipe[2] = {-1, -1};   // lint3d: conc-global-mutable-ok

struct ShutdownPipeInit
{
    ShutdownPipeInit()
    {
        if (::pipe(g_shutdown_pipe) != 0)
            g_shutdown_pipe[0] = g_shutdown_pipe[1] = -1;
    }
};

ShutdownPipeInit g_shutdown_pipe_init;   // lint3d: conc-global-mutable-ok

} // anonymous namespace

void
requestShutdown()
{
    g_shutdown_requested.store(true, std::memory_order_relaxed);
    if (g_shutdown_pipe[1] >= 0) {
        char byte = 1;
        // A full pipe just means a wakeup is already queued.
        (void)!::write(g_shutdown_pipe[1], &byte, 1);
    }
}

bool
shutdownRequested()
{
    return g_shutdown_requested.load(std::memory_order_relaxed);
}

namespace {

/** Non-request control line ({"op": ...}), if this line is one. */
enum class ControlOp
{
    None,
    Stop,
    Counters,
    Stats,
    Health,
    Flight,
    Trace,
    Unknown
};

/** A classified control line plus its op-specific arguments. */
struct ControlLine
{
    ControlOp op = ControlOp::None;
    std::string op_name;
    std::string trace_action;   ///< "start" / "stop" (trace op)
    std::string trace_path;     ///< output file (trace stop)
};

/**
 * Classify on the parsed top-level object only: a line is a control
 * line iff it is a JSON object with a top-level "op" member. A
 * request whose *spec* contains an "op" key is never misrouted, and
 * an unrecognized op value gets its own error instead of being
 * parsed as a (certain to fail) study request.
 */
ControlLine
classifyLine(const std::string &line)
{
    ControlLine out;
    JsonValue root;
    std::string error;
    if (!parseJson(line, root, error) || !root.isObject())
        return out;   // the service renders parse errors
    const JsonValue *op = root.find("op");
    if (!op)
        return out;
    out.op = ControlOp::Unknown;
    if (!op->isString())
        return out;
    out.op_name = op->string;
    if (op->string == "stop")
        out.op = ControlOp::Stop;
    else if (op->string == "counters")
        out.op = ControlOp::Counters;
    else if (op->string == "stats")
        out.op = ControlOp::Stats;
    else if (op->string == "health")
        out.op = ControlOp::Health;
    else if (op->string == "flight")
        out.op = ControlOp::Flight;
    else if (op->string == "trace") {
        out.op = ControlOp::Trace;
        if (const JsonValue *action = root.find("action");
            action && action->isString())
            out.trace_action = action->string;
        if (const JsonValue *path = root.find("path");
            path && path->isString())
            out.trace_path = path->string;
    }
    return out;
}

std::string
countersLine(const StudyService &service)
{
    std::ostringstream os;
    JsonWriter w(os, /*compact=*/true);
    w.beginObject();
    w.key("schema_version").value(unsigned(obs::kSchemaVersion));
    w.key("status").value("ok");
    w.key("counters");
    obs::writeCountersJson(w, service.counters());
    w.endObject();
    return os.str();
}

std::string
stopLine()
{
    return "{\"schema_version\":" +
           std::to_string(obs::kSchemaVersion) +
           ",\"status\":\"ok\",\"stopping\":true}";
}

std::string
errorLine(const std::string &message)
{
    return "{\"schema_version\":" +
           std::to_string(obs::kSchemaVersion) +
           ",\"status\":\"error\",\"error\":\"" +
           JsonWriter::escape(message) + "\"}";
}

std::string
oversizedLine(std::size_t cap)
{
    return errorLine("request line exceeds the " +
                     std::to_string(cap) + " byte cap");
}

std::string
traceLine(StudyService &service, const ControlLine &control)
{
    if (control.trace_action == "start") {
        std::string error;
        if (!service.traceStart(error))
            return errorLine(error);
        return "{\"schema_version\":" +
               std::to_string(obs::kSchemaVersion) +
               ",\"status\":\"ok\",\"tracing\":true}";
    }
    if (control.trace_action == "stop") {
        std::string path = control.trace_path.empty()
                               ? "serve_trace.json"
                               : control.trace_path;
        std::string message;
        if (!service.traceStop(path, message))
            return errorLine(message);
        return "{\"schema_version\":" +
               std::to_string(obs::kSchemaVersion) +
               ",\"status\":\"ok\",\"tracing\":false,\"trace\":\"" +
               JsonWriter::escape(message) + "\"}";
    }
    return errorLine("trace op needs \"action\": \"start\" or "
                     "\"stop\"");
}

/**
 * Handle one protocol line; returns false when it was a stop op
 * (after emitting the acknowledgement via @p emit).
 */
template <typename EmitFn>
bool
handleLine(StudyService &service, const std::string &line,
           EmitFn &&emit)
{
    ControlLine control = classifyLine(line);
    switch (control.op) {
      case ControlOp::Stop:
        emit(stopLine());
        return false;
      case ControlOp::Counters:
        emit(countersLine(service));
        return true;
      case ControlOp::Stats:
        emit(service.statsJson());
        return true;
      case ControlOp::Health:
        emit(service.healthJson());
        return true;
      case ControlOp::Flight:
        emit(service.flightJson());
        return true;
      case ControlOp::Trace:
        emit(traceLine(service, control));
        return true;
      case ControlOp::Unknown:
        emit(errorLine("unknown op '" + control.op_name + "'"));
        return true;
      case ControlOp::None:
        break;
    }
    emit(service.handle(line).line);
    return true;
}

bool
isBlank(const std::string &line)
{
    return line.find_first_not_of(" \t\r") == std::string::npos;
}

/**
 * getline with a byte cap. Reads through the next newline; bytes
 * past @p max_bytes are consumed but discarded, with @p overflow set
 * so the caller can respond with a clean error instead of buffering
 * an arbitrarily long line. @return false at end of stream.
 */
bool
readBoundedLine(std::istream &in, std::string &line,
                std::size_t max_bytes, bool &overflow)
{
    line.clear();
    overflow = false;
    char ch;
    while (in.get(ch)) {
        if (ch == '\n')
            return true;
        if (line.size() >= max_bytes)
            overflow = true;   // keep consuming to the newline
        else
            line.push_back(ch);
    }
    // EOF (or EINTR from a shutdown signal): deliver a final
    // unterminated line if one was read.
    return !line.empty() || overflow;
}

} // anonymous namespace

std::uint64_t
runPipeServer(StudyService &service, std::istream &in,
              std::ostream &out)
{
    const std::size_t cap = service.options().max_line_bytes;
    std::uint64_t handled = 0;
    std::string line;
    bool overflow = false;
    while (!shutdownRequested() &&
           readBoundedLine(in, line, cap, overflow)) {
        if (overflow) {
            ++handled;
            service.noteOversizedLine();
            out << oversizedLine(cap) << "\n";
            out.flush();
            continue;
        }
        if (isBlank(line))
            continue;
        ++handled;
        bool keep_going = handleLine(
            service, line, [&out](const std::string &response) {
                out << response << "\n";
                out.flush();
            });
        if (!keep_going)
            break;
    }
    service.drain();
    return handled;
}

namespace {

/** Loop ::send until @p data is fully written (or the peer is gone). */
void
sendAll(int fd, const std::string &data)
{
    std::size_t sent = 0;
    while (sent < data.size()) {
        ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
                           MSG_NOSIGNAL);
        if (n <= 0)
            return;
        sent += std::size_t(n);
    }
}

/** Shared shutdown handshake between connections and the acceptor. */
struct ServerState
{
    std::atomic<bool> stopping{false};
    int listen_fd = -1;
};

void
handleConnection(StudyService &service, ServerState &state, int fd)
{
    // A receive timeout turns blocked connections into periodic
    // stopping-flag checks, so a stop from one client (or a signal)
    // releases the others instead of leaving them wedged in recv().
    timeval timeout{};
    timeout.tv_usec = 200 * 1000;
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout,
                 sizeof(timeout));

    const std::size_t cap = service.options().max_line_bytes;
    std::string buffer;
    char chunk[4096];
    bool open = true;
    bool discarding = false;   // inside an oversized line's remainder
    while (open) {
        ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
        if (n == 0)
            break;
        if (n < 0) {
            bool retriable = errno == EAGAIN ||
                             errno == EWOULDBLOCK || errno == EINTR;
            if (retriable && !state.stopping.load(std::memory_order_seq_cst) &&
                !shutdownRequested())
                continue;
            break;
        }
        buffer.append(chunk, std::size_t(n));
        std::size_t newline;
        while (open &&
               (newline = buffer.find('\n')) != std::string::npos) {
            std::string line = buffer.substr(0, newline);
            buffer.erase(0, newline + 1);
            if (discarding) {
                // Tail of a line already rejected as oversized.
                discarding = false;
                continue;
            }
            if (isBlank(line))
                continue;
            if (line.size() > cap) {
                service.noteOversizedLine();
                sendAll(fd, oversizedLine(cap) + "\n");
                continue;
            }
            bool keep_going =
                handleLine(service, line,
                           [fd](const std::string &response) {
                               sendAll(fd, response + "\n");
                           });
            if (!keep_going) {
                // Stop: wake the acceptor out of accept().
                // seq_cst: the store must be globally ordered
                // before the shutdown() below so the acceptor that
                // wakes from accept() re-reads it as true.
                state.stopping.store(true, std::memory_order_seq_cst);
                ::shutdown(state.listen_fd, SHUT_RDWR);
                open = false;
            }
        }
        if (!discarding && buffer.size() > cap) {
            // A line longer than the cap with no newline yet: answer
            // now and drop everything up to the next newline.
            service.noteOversizedLine();
            sendAll(fd, oversizedLine(cap) + "\n");
            buffer.clear();
            discarding = true;
        }
    }
    ::close(fd);
}

} // anonymous namespace

int
runTcpServer(StudyService &service, unsigned port,
             unsigned connection_threads,
             std::atomic<unsigned> *bound_port)
{
    int listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd < 0) {
        warn("stack3d-serve: socket() failed: ",
             std::strerror(errno));
        return 1;
    }
    int reuse = 1;
    ::setsockopt(listen_fd, SOL_SOCKET, SO_REUSEADDR, &reuse,
                 sizeof(reuse));

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(std::uint16_t(port));
    if (::bind(listen_fd, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) != 0) {
        warn("stack3d-serve: cannot bind 127.0.0.1:", port, ": ",
             std::strerror(errno));
        ::close(listen_fd);
        return 1;
    }
    if (::listen(listen_fd, 64) != 0) {
        warn("stack3d-serve: listen() failed: ",
             std::strerror(errno));
        ::close(listen_fd);
        return 1;
    }

    sockaddr_in bound{};
    socklen_t bound_len = sizeof(bound);
    if (::getsockname(listen_fd,
                      reinterpret_cast<sockaddr *>(&bound),
                      &bound_len) == 0) {
        inform("stack3d-serve: listening on 127.0.0.1:",
               ntohs(bound.sin_port));
        if (bound_port)
            // seq_cst: publishes the port to the test thread
            // polling it; pairs with its seq_cst load.
            bound_port->store(ntohs(bound.sin_port),
                              std::memory_order_seq_cst);
    }

    ServerState state;
    state.listen_fd = listen_fd;
    {
        exec::ThreadPool connections(connection_threads);
        // seq_cst on every `stopping` access: it is a one-shot
        // stop flag raised from connection handlers; contention is
        // nil, so the fence cost is irrelevant next to poll().
        while (!state.stopping.load(std::memory_order_seq_cst) &&
               !shutdownRequested()) {
            // Wait on the listen socket and the shutdown self-pipe
            // together, so a signal cannot slip in between the flag
            // check and a blocking accept().
            pollfd waits[2] = {{listen_fd, POLLIN, 0},
                               {g_shutdown_pipe[0], POLLIN, 0}};
            nfds_t n_waits = g_shutdown_pipe[0] >= 0 ? 2 : 1;
            int ready = ::poll(waits, n_waits, -1);
            if (ready < 0) {
                if (errno == EINTR)
                    continue;   // loop re-checks the flags
                break;
            }
            if (n_waits == 2 && waits[1].revents != 0)
                break;
            if ((waits[0].revents & (POLLIN | POLLERR | POLLHUP)) == 0)
                continue;
            int fd = ::accept(listen_fd, nullptr, nullptr);
            if (fd < 0) {
                // EINTR without a shutdown request: spurious signal.
                if (errno == EINTR && !shutdownRequested() &&
                    !state.stopping.load(std::memory_order_seq_cst))
                    continue;
                break;
            }
            // The future is intentionally dropped; the pool drains
            // every connection before it is destroyed.
            (void)connections.submit([&service, &state, fd] {
                handleConnection(service, state, fd);
            });
        }
        // A signal-initiated shutdown must release connections still
        // blocked in their recv() timeout loop. seq_cst: ordered
        // before the pool destructor's drain below.
        state.stopping.store(true, std::memory_order_seq_cst);
    }
    ::close(listen_fd);
    service.drain();
    return 0;
}

} // namespace serve
} // namespace stack3d
