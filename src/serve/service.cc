#include "serve/service.hh"

#include <algorithm>
#include <chrono>
#include <exception>
#include <sstream>
#include <thread>

#include "common/digest.hh"
#include "common/fault.hh"
#include "common/json.hh"
#include "common/timing.hh"
#include "core/study_json.hh"
#include "obs/provenance.hh"
#include "obs/trace.hh"

namespace stack3d {
namespace serve {

namespace {

/** Assemble the NDJSON response line around the raw report bytes. */
std::string
renderLine(const ServeResult &result, const std::string &id)
{
    std::string line = "{\"schema_version\":" +
                       std::to_string(obs::kSchemaVersion);
    if (!id.empty())
        line += ",\"id\":\"" + JsonWriter::escape(id) + "\"";
    switch (result.status) {
      case ServeResult::Status::Ok:
        line += ",\"status\":\"ok\",\"cached\":";
        line += result.cached ? "true" : "false";
        line += ",\"digest\":\"" + result.digest_hex + "\"";
        // Splice the stored bytes verbatim: a cache hit's report is
        // byte-identical to the miss that produced it.
        line += ",\"report\":" + result.report_json;
        break;
      case ServeResult::Status::Error:
        line += ",\"status\":\"error\",\"error\":\"" +
                JsonWriter::escape(result.error) + "\"";
        break;
      case ServeResult::Status::Rejected:
        line += ",\"status\":\"rejected\",\"error\":\"" +
                JsonWriter::escape(result.error) +
                "\",\"retry_after_ms\":" +
                std::to_string(result.retry_after_ms);
        break;
      case ServeResult::Status::Timeout:
        line += ",\"status\":\"timeout\",\"error\":\"" +
                JsonWriter::escape(result.error) + "\"";
        if (!result.digest_hex.empty())
            line += ",\"digest\":\"" + result.digest_hex + "\"";
        break;
    }
    line += "}";
    return line;
}

} // anonymous namespace

void
StudyService::LatencyRing::add(double seconds)
{
    if (samples.size() < kCapacity) {
        samples.push_back(seconds);
    } else {
        samples[next] = seconds;
        next = (next + 1) % kCapacity;
    }
}

double
StudyService::LatencyRing::percentile(double p) const
{
    if (samples.empty())
        return 0.0;
    std::vector<double> sorted(samples);
    std::size_t rank = std::size_t(p * double(sorted.size() - 1));
    std::nth_element(sorted.begin(),
                     sorted.begin() + std::ptrdiff_t(rank),
                     sorted.end());
    return sorted[rank];
}

StudyService::StudyService(const ServiceOptions &options)
    : _options(options), _pool(options.workers),
      _cache(options.cache_entries, options.cache_dir)
{
    // The watchdog needs asynchronous executions to observe; in
    // inline mode (workers == 0) handle() is the execution.
    if (_options.workers > 0 && _options.watchdog_factor > 0 &&
        _options.watchdog_interval_ms > 0) {
        _watchdog_pool = std::make_unique<exec::ThreadPool>(1);
        _watchdog_done =
            _watchdog_pool->submit([this] { watchdogLoop(); });
    }
}

StudyService::~StudyService()
{
    drain();
    if (_watchdog_pool) {
        {
            std::lock_guard<std::mutex> lock(_mutex);
            _watchdog_stop = true;
        }
        _watchdog_cv.notify_all();
        _watchdog_done.get();
        _watchdog_pool.reset();
    }
}

std::string
StudyService::execute(const Request &request,
                      const CancelToken *cancel)
{
    core::RunOptions opts = request.options;
    if (_options.max_study_threads != 0 &&
        (opts.threads == 0 ||
         opts.threads > _options.max_study_threads)) {
        opts.threads = _options.max_study_threads;
    }
    // Server mode: results stream back as JSON; nothing should write
    // to the console mid-request.
    opts.verbosity = core::Verbosity::Silent;
    opts.progress = nullptr;
    opts.cancel = cancel;

    std::ostringstream os;
    JsonWriter w(os, /*compact=*/true);
    w.beginObject();
    w.key("study").value(studyKindName(request.kind));
    switch (request.kind) {
      case StudyKind::Memory: {
        auto report = core::runMemoryStudy(opts, request.memory);
        w.key("meta").beginObject();
        core::writeMetaJson(w, report.meta);
        w.endObject();
        w.key("payload");
        core::writeMemoryStudyResultJson(w, report.payload);
        break;
      }
      case StudyKind::Logic: {
        auto report = core::runLogicStudy(opts, request.logic);
        w.key("meta").beginObject();
        core::writeMetaJson(w, report.meta);
        w.endObject();
        w.key("payload");
        core::writeLogicStudyResultJson(w, report.payload);
        break;
      }
      case StudyKind::StackThermal: {
        auto report =
            core::runStackThermalStudy(opts, request.stack_thermal);
        w.key("meta").beginObject();
        core::writeMetaJson(w, report.meta);
        w.endObject();
        w.key("payload");
        core::writeStackThermalResultJson(w, report.payload);
        break;
      }
      case StudyKind::Sensitivity: {
        auto report =
            core::runConductivitySensitivity(opts,
                                             request.sensitivity);
        w.key("meta").beginObject();
        core::writeMetaJson(w, report.meta);
        w.endObject();
        w.key("payload");
        core::writeSensitivityResultJson(w, report.payload);
        break;
      }
    }
    w.endObject();
    return os.str();
}

void
StudyService::finalizeLocked(Execution &exec)
{
    if (exec.finalized)
        return;
    exec.finalized = true;
    _pending.erase(exec.digest);
    --_in_flight;
}

unsigned
StudyService::retryHintLocked() const
{
    // Rough time for the backlog to clear: how many worker "waves"
    // are queued ahead, times the cold p95. Before any cold sample
    // exists, assume a nominal 100 ms study.
    double p95_s = _cold_latency.percentile(0.95);
    if (p95_s <= 0.0)
        p95_s = 0.1;
    unsigned workers = std::max(_options.workers, 1u);
    double waves =
        std::max(double(_in_flight) / double(workers), 1.0);
    double ms = 1e3 * p95_s * waves;
    return unsigned(std::min(std::max(ms, 1.0), 60000.0));
}

ServeResult
StudyService::handle(const std::string &line)
{
    WallTimer timer;
    ServeResult result;

    Request request;
    std::string error;
    if (!parseRequest(line, request, error)) {
        result.status = ServeResult::Status::Error;
        result.error = error;
        std::lock_guard<std::mutex> lock(_mutex);
        ++_n_requests;
        ++_n_errors;
        result.line = renderLine(result, request.id);
        return result;
    }

    obs::Span span(std::string("serve/") + studyKindName(request.kind),
                   "serve");
    std::uint64_t digest = request.digest();
    result.digest_hex = digestHex(digest);
    // Every waiter times out against its own arrival-anchored
    // deadline, owner or coalesced alike.
    const auto deadline_tp =
        CancelToken::Clock::now() +
        std::chrono::milliseconds(request.deadline_ms);

    std::shared_ptr<Execution> exec;
    bool owner = false;
    {
        std::lock_guard<std::mutex> lock(_mutex);
        ++_n_requests;

        std::string cached;
        if (_cache.tryGet(digest, cached)) {
            result.status = ServeResult::Status::Ok;
            result.cached = true;
            result.report_json = std::move(cached);
            ++_n_ok;
            ++_n_hit;
            double elapsed = timer.seconds();
            _hit_seconds += elapsed;
            _hit_latency.add(elapsed);
            result.line = renderLine(result, request.id);
            return result;
        }

        auto pending = _pending.find(digest);
        if (pending != _pending.end()) {
            exec = pending->second;
            result.coalesced = true;
            ++_n_coalesced;
        } else {
            unsigned limit = std::max(_options.workers, 1u) +
                             _options.queue_limit;
            if (_draining || _in_flight >= limit) {
                result.status = ServeResult::Status::Rejected;
                result.retry_after_ms = retryHintLocked();
                result.error =
                    _draining ? "server draining"
                              : "server overloaded (" +
                                    std::to_string(_in_flight) +
                                    " requests in flight)";
                ++_n_rejected;
                result.line = renderLine(result, request.id);
                return result;
            }
            ++_in_flight;
            _in_flight_high_water =
                std::max(_in_flight_high_water, _in_flight);
            exec = std::make_shared<Execution>();
            exec->digest = digest;
            exec->label = studyKindName(request.kind);
            exec->cancel =
                std::make_shared<CancelToken>(request.deadline_ms);
            exec->promise =
                std::make_shared<std::promise<std::string>>();
            exec->future = exec->promise->get_future().share();
            exec->started = CancelToken::Clock::now();
            _pending[digest] = exec;
            owner = true;
        }
    }

    if (owner) {
        // The task, not the owning handle() call, retires the
        // execution: an owner abandoning at its deadline frees the
        // admission slot immediately (finalize is once-only), and a
        // finished-but-abandoned result still reaches the cache.
        std::shared_ptr<Execution> task_exec = exec;
        (void)_pool.submit([this, request, task_exec] {
            try {
                std::string report =
                    execute(request, task_exec->cancel.get());
                {
                    std::lock_guard<std::mutex> lock(_mutex);
                    _cache.put(task_exec->digest, report);
                    finalizeLocked(*task_exec);
                }
                task_exec->promise->set_value(std::move(report));
            } catch (...) {
                {
                    std::lock_guard<std::mutex> lock(_mutex);
                    finalizeLocked(*task_exec);
                }
                task_exec->promise->set_exception(
                    std::current_exception());
            }
        });
    }

    std::future_status wait_status = std::future_status::ready;
    if (request.deadline_ms > 0)
        wait_status = exec->future.wait_until(deadline_tp);
    else
        exec->future.wait();

    if (wait_status != std::future_status::ready) {
        // Deadline expired with the execution still running: answer
        // now; the execution stops at its next cancel checkpoint.
        if (owner)
            exec->cancel->cancel();
        {
            std::lock_guard<std::mutex> lock(_mutex);
            if (owner)
                finalizeLocked(*exec);
            ++_n_timeouts;
        }
        result.status = ServeResult::Status::Timeout;
        result.error = "deadline of " +
                       std::to_string(request.deadline_ms) +
                       " ms expired";
        result.line = renderLine(result, request.id);
        return result;
    }

    try {
        result.report_json = exec->future.get();
        result.status = ServeResult::Status::Ok;
        std::lock_guard<std::mutex> lock(_mutex);
        ++_n_ok;
        ++_n_cold;
        double elapsed = timer.seconds();
        _cold_seconds += elapsed;
        _cold_latency.add(elapsed);
    } catch (const CancelledError &e) {
        // The execution observed cancellation (its own deadline, or
        // drain) before we hit ours: still a timeout to the client.
        result.status = ServeResult::Status::Timeout;
        result.error = e.what();
        std::lock_guard<std::mutex> lock(_mutex);
        ++_n_timeouts;
    } catch (const std::exception &e) {
        result.status = ServeResult::Status::Error;
        result.error = e.what();
        std::lock_guard<std::mutex> lock(_mutex);
        ++_n_errors;
    }
    result.line = renderLine(result, request.id);
    return result;
}

void
StudyService::drain()
{
    using Clock = CancelToken::Clock;
    {
        std::lock_guard<std::mutex> lock(_mutex);
        _draining = true;
    }
    auto waitIdle = [this](Clock::time_point until) {
        for (;;) {
            {
                std::lock_guard<std::mutex> lock(_mutex);
                if (_in_flight == 0)
                    return true;
            }
            if (Clock::now() >= until)
                return false;
            std::this_thread::sleep_for(
                std::chrono::milliseconds(5));
        }
    };
    auto budget =
        std::chrono::milliseconds(_options.drain_timeout_ms);
    if (waitIdle(Clock::now() + budget))
        return;
    // Out of patience: cancel the stragglers and wait them out (a
    // cancelled study stops within one cell / CG iteration).
    {
        std::lock_guard<std::mutex> lock(_mutex);
        for (auto &entry : _pending)
            entry.second->cancel->cancel();
    }
    (void)waitIdle(Clock::now() + budget);
}

void
StudyService::noteOversizedLine()
{
    // Not counted as a request or an error: the line was bounced at
    // the transport before it ever became one.
    std::lock_guard<std::mutex> lock(_mutex);
    ++_n_line_overflows;
}

void
StudyService::watchdogLoop()
{
    std::unique_lock<std::mutex> lock(_mutex);
    while (!_watchdog_stop) {
        _watchdog_cv.wait_for(
            lock, std::chrono::milliseconds(
                      _options.watchdog_interval_ms));
        if (_watchdog_stop)
            break;
        double p99_s = _cold_latency.percentile(0.99);
        if (p99_s <= 0.0)
            continue;   // no cold baseline yet
        double limit_s = p99_s * double(_options.watchdog_factor);
        auto now = CancelToken::Clock::now();
        for (auto &entry : _pending) {
            Execution &exec = *entry.second;
            double run_s =
                std::chrono::duration<double>(now - exec.started)
                    .count();
            if (exec.flagged || run_s <= limit_s)
                continue;
            exec.flagged = true;
            ++_n_watchdog_flagged;
            // inform, not warn: warn() is captured into in-flight
            // study reports, which must stay deterministic.
            inform("serve watchdog: ", exec.label, " execution ",
                   digestHex(exec.digest), " running for ", run_s,
                   " s (over ", _options.watchdog_factor,
                   "x cold p99 of ", p99_s, " s)");
        }
    }
}

obs::CounterSet
StudyService::counters() const
{
    std::lock_guard<std::mutex> lock(_mutex);
    obs::CounterSet c;
    c.set("serve.requests", double(_n_requests));
    c.set("serve.ok", double(_n_ok));
    c.set("serve.errors", double(_n_errors));
    c.set("serve.rejected", double(_n_rejected));
    c.set("serve.timeouts", double(_n_timeouts));
    c.set("serve.line_overflows", double(_n_line_overflows));
    c.set("serve.draining", _draining ? 1.0 : 0.0);
    c.set("serve.watchdog.flagged", double(_n_watchdog_flagged));
    c.set("serve.cache.hits", double(_cache.stats().hits));
    c.set("serve.cache.misses", double(_cache.stats().misses));
    c.set("serve.cache.evictions", double(_cache.stats().evictions));
    c.set("serve.cache.disk_hits", double(_cache.stats().disk_hits));
    c.set("serve.cache.disk_writes",
          double(_cache.stats().disk_writes));
    c.set("serve.cache.corrupt", double(_cache.stats().corrupt));
    c.set("serve.cache.scrubbed", double(_cache.stats().scrubbed));
    c.set("serve.cache.entries", double(_cache.size()));
    c.set("serve.coalesced", double(_n_coalesced));
    c.set("serve.queue.high_water", double(_in_flight_high_water));
    c.set("serve.latency.hit.count", double(_n_hit));
    c.set("serve.latency.hit.total_s", _hit_seconds);
    c.set("serve.latency.hit.p50_ms",
          1e3 * _hit_latency.percentile(0.50));
    c.set("serve.latency.hit.p95_ms",
          1e3 * _hit_latency.percentile(0.95));
    c.set("serve.latency.hit.p99_ms",
          1e3 * _hit_latency.percentile(0.99));
    c.set("serve.latency.cold.count", double(_n_cold));
    c.set("serve.latency.cold.total_s", _cold_seconds);
    c.set("serve.latency.cold.p50_ms",
          1e3 * _cold_latency.percentile(0.50));
    c.set("serve.latency.cold.p95_ms",
          1e3 * _cold_latency.percentile(0.95));
    c.set("serve.latency.cold.p99_ms",
          1e3 * _cold_latency.percentile(0.99));
    _pool.appendCounters(c, "serve.pool.");
    // Fault-injection accounting, so a chaos run's schedule is
    // visible and two same-seed runs can be diffed.
    std::vector<FaultPointInfo> faults = FaultRegistry::snapshot();
    c.set("serve.fault.points", double(faults.size()));
    for (const FaultPointInfo &point : faults) {
        c.set("serve.fault." + point.name + ".checks",
              double(point.checks));
        c.set("serve.fault." + point.name + ".fires",
              double(point.fires));
    }
    return c;
}

} // namespace serve
} // namespace stack3d
