#include "serve/service.hh"

#include <algorithm>
#include <exception>
#include <sstream>

#include "common/digest.hh"
#include "common/json.hh"
#include "common/timing.hh"
#include "core/study_json.hh"
#include "obs/provenance.hh"
#include "obs/trace.hh"

namespace stack3d {
namespace serve {

namespace {

/** Assemble the NDJSON response line around the raw report bytes. */
std::string
renderLine(const ServeResult &result, const std::string &id)
{
    std::string line = "{\"schema_version\":" +
                       std::to_string(obs::kSchemaVersion);
    if (!id.empty())
        line += ",\"id\":\"" + JsonWriter::escape(id) + "\"";
    switch (result.status) {
      case ServeResult::Status::Ok:
        line += ",\"status\":\"ok\",\"cached\":";
        line += result.cached ? "true" : "false";
        line += ",\"digest\":\"" + result.digest_hex + "\"";
        // Splice the stored bytes verbatim: a cache hit's report is
        // byte-identical to the miss that produced it.
        line += ",\"report\":" + result.report_json;
        break;
      case ServeResult::Status::Error:
        line += ",\"status\":\"error\",\"error\":\"" +
                JsonWriter::escape(result.error) + "\"";
        break;
      case ServeResult::Status::Rejected:
        line += ",\"status\":\"rejected\",\"error\":\"" +
                JsonWriter::escape(result.error) + "\"";
        break;
    }
    line += "}";
    return line;
}

} // anonymous namespace

void
StudyService::LatencyRing::add(double seconds)
{
    if (samples.size() < kCapacity) {
        samples.push_back(seconds);
    } else {
        samples[next] = seconds;
        next = (next + 1) % kCapacity;
    }
}

double
StudyService::LatencyRing::percentile(double p) const
{
    if (samples.empty())
        return 0.0;
    std::vector<double> sorted(samples);
    std::size_t rank = std::size_t(p * double(sorted.size() - 1));
    std::nth_element(sorted.begin(),
                     sorted.begin() + std::ptrdiff_t(rank),
                     sorted.end());
    return sorted[rank];
}

StudyService::StudyService(const ServiceOptions &options)
    : _options(options), _pool(options.workers),
      _cache(options.cache_entries, options.cache_dir)
{
}

StudyService::~StudyService() = default;

std::string
StudyService::execute(const Request &request)
{
    core::RunOptions opts = request.options;
    if (_options.max_study_threads != 0 &&
        (opts.threads == 0 ||
         opts.threads > _options.max_study_threads)) {
        opts.threads = _options.max_study_threads;
    }
    // Server mode: results stream back as JSON; nothing should write
    // to the console mid-request.
    opts.verbosity = core::Verbosity::Silent;
    opts.progress = nullptr;

    std::ostringstream os;
    JsonWriter w(os, /*compact=*/true);
    w.beginObject();
    w.key("study").value(studyKindName(request.kind));
    switch (request.kind) {
      case StudyKind::Memory: {
        auto report = core::runMemoryStudy(opts, request.memory);
        w.key("meta").beginObject();
        core::writeMetaJson(w, report.meta);
        w.endObject();
        w.key("payload");
        core::writeMemoryStudyResultJson(w, report.payload);
        break;
      }
      case StudyKind::Logic: {
        auto report = core::runLogicStudy(opts, request.logic);
        w.key("meta").beginObject();
        core::writeMetaJson(w, report.meta);
        w.endObject();
        w.key("payload");
        core::writeLogicStudyResultJson(w, report.payload);
        break;
      }
      case StudyKind::StackThermal: {
        auto report =
            core::runStackThermalStudy(opts, request.stack_thermal);
        w.key("meta").beginObject();
        core::writeMetaJson(w, report.meta);
        w.endObject();
        w.key("payload");
        core::writeStackThermalResultJson(w, report.payload);
        break;
      }
      case StudyKind::Sensitivity: {
        auto report =
            core::runConductivitySensitivity(opts,
                                             request.sensitivity);
        w.key("meta").beginObject();
        core::writeMetaJson(w, report.meta);
        w.endObject();
        w.key("payload");
        core::writeSensitivityResultJson(w, report.payload);
        break;
      }
    }
    w.endObject();
    return os.str();
}

ServeResult
StudyService::handle(const std::string &line)
{
    WallTimer timer;
    ServeResult result;

    Request request;
    std::string error;
    if (!parseRequest(line, request, error)) {
        result.status = ServeResult::Status::Error;
        result.error = error;
        std::lock_guard<std::mutex> lock(_mutex);
        ++_n_requests;
        ++_n_errors;
        result.line = renderLine(result, request.id);
        return result;
    }

    obs::Span span(std::string("serve/") + studyKindName(request.kind),
                   "serve");
    std::uint64_t digest = request.digest();
    result.digest_hex = digestHex(digest);

    std::shared_future<std::string> shared;
    std::shared_ptr<std::promise<std::string>> promise;
    {
        std::lock_guard<std::mutex> lock(_mutex);
        ++_n_requests;

        std::string cached;
        if (_cache.tryGet(digest, cached)) {
            result.status = ServeResult::Status::Ok;
            result.cached = true;
            result.report_json = std::move(cached);
            ++_n_ok;
            ++_n_hit;
            double elapsed = timer.seconds();
            _hit_seconds += elapsed;
            _hit_latency.add(elapsed);
            result.line = renderLine(result, request.id);
            return result;
        }

        auto pending = _pending.find(digest);
        if (pending != _pending.end()) {
            shared = pending->second;
            result.coalesced = true;
            ++_n_coalesced;
        } else {
            unsigned limit = std::max(_options.workers, 1u) +
                             _options.queue_limit;
            if (_in_flight >= limit) {
                result.status = ServeResult::Status::Rejected;
                result.error = "server overloaded (" +
                               std::to_string(_in_flight) +
                               " requests in flight)";
                ++_n_rejected;
                result.line = renderLine(result, request.id);
                return result;
            }
            ++_in_flight;
            _in_flight_high_water =
                std::max(_in_flight_high_water, _in_flight);
            promise = std::make_shared<std::promise<std::string>>();
            shared = promise->get_future().share();
            _pending[digest] = shared;
        }
    }

    if (promise) {
        // We own the execution: run it on the study pool and publish
        // the outcome (value or exception) to every coalesced waiter.
        std::string report;
        std::string exec_error;
        bool ok = false;
        try {
            report =
                _pool.submit([this, request] { return execute(request); })
                    .get();
            ok = true;
            promise->set_value(report);
        } catch (const std::exception &e) {
            exec_error = e.what();
            promise->set_exception(std::current_exception());
        } catch (...) {
            exec_error = "study execution failed";
            promise->set_exception(std::current_exception());
        }

        std::lock_guard<std::mutex> lock(_mutex);
        _pending.erase(digest);
        --_in_flight;
        if (ok) {
            _cache.put(digest, report);
            result.status = ServeResult::Status::Ok;
            result.report_json = std::move(report);
            ++_n_ok;
            ++_n_cold;
            double elapsed = timer.seconds();
            _cold_seconds += elapsed;
            _cold_latency.add(elapsed);
        } else {
            result.status = ServeResult::Status::Error;
            result.error = exec_error;
            ++_n_errors;
        }
        result.line = renderLine(result, request.id);
        return result;
    }

    // Coalesced: wait for the owning execution.
    try {
        result.report_json = shared.get();
        result.status = ServeResult::Status::Ok;
        std::lock_guard<std::mutex> lock(_mutex);
        ++_n_ok;
        ++_n_cold;
        double elapsed = timer.seconds();
        _cold_seconds += elapsed;
        _cold_latency.add(elapsed);
    } catch (const std::exception &e) {
        result.status = ServeResult::Status::Error;
        result.error = e.what();
        std::lock_guard<std::mutex> lock(_mutex);
        ++_n_errors;
    }
    result.line = renderLine(result, request.id);
    return result;
}

obs::CounterSet
StudyService::counters() const
{
    std::lock_guard<std::mutex> lock(_mutex);
    obs::CounterSet c;
    c.set("serve.requests", double(_n_requests));
    c.set("serve.ok", double(_n_ok));
    c.set("serve.errors", double(_n_errors));
    c.set("serve.rejected", double(_n_rejected));
    c.set("serve.cache.hits", double(_cache.stats().hits));
    c.set("serve.cache.misses", double(_cache.stats().misses));
    c.set("serve.cache.evictions", double(_cache.stats().evictions));
    c.set("serve.cache.disk_hits", double(_cache.stats().disk_hits));
    c.set("serve.cache.disk_writes",
          double(_cache.stats().disk_writes));
    c.set("serve.cache.entries", double(_cache.size()));
    c.set("serve.coalesced", double(_n_coalesced));
    c.set("serve.queue.high_water", double(_in_flight_high_water));
    c.set("serve.latency.hit.count", double(_n_hit));
    c.set("serve.latency.hit.total_s", _hit_seconds);
    c.set("serve.latency.hit.p50_ms",
          1e3 * _hit_latency.percentile(0.50));
    c.set("serve.latency.hit.p95_ms",
          1e3 * _hit_latency.percentile(0.95));
    c.set("serve.latency.hit.p99_ms",
          1e3 * _hit_latency.percentile(0.99));
    c.set("serve.latency.cold.count", double(_n_cold));
    c.set("serve.latency.cold.total_s", _cold_seconds);
    c.set("serve.latency.cold.p50_ms",
          1e3 * _cold_latency.percentile(0.50));
    c.set("serve.latency.cold.p95_ms",
          1e3 * _cold_latency.percentile(0.95));
    c.set("serve.latency.cold.p99_ms",
          1e3 * _cold_latency.percentile(0.99));
    _pool.appendCounters(c, "serve.pool.");
    return c;
}

} // namespace serve
} // namespace stack3d
