#include "serve/service.hh"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <exception>
#include <fstream>
#include <sstream>
#include <thread>

#include "common/digest.hh"
#include "common/fault.hh"
#include "common/json.hh"
#include "common/logging.hh"
#include "common/timing.hh"
#include "core/study_json.hh"
#include "obs/provenance.hh"

namespace stack3d {
namespace serve {

namespace {

/** Set by requestFlightDump() (async-signal-safe), consumed by
 *  pollFlightDump() at the next watchdog tick or request arrival. */
std::atomic<bool> g_flight_dump_requested{false};

const char *
statusName(ServeResult::Status status)
{
    switch (status) {
      case ServeResult::Status::Ok:
        return "ok";
      case ServeResult::Status::Rejected:
        return "rejected";
      case ServeResult::Status::Timeout:
        return "timeout";
      case ServeResult::Status::Error:
        break;
    }
    return "error";
}

/** Assemble the NDJSON response line around the raw report bytes. */
std::string
renderLine(const ServeResult &result, const std::string &id)
{
    std::string line = "{\"schema_version\":" +
                       std::to_string(obs::kSchemaVersion);
    if (!id.empty())
        line += ",\"id\":\"" + JsonWriter::escape(id) + "\"";
    if (!result.trace_id.empty())
        line += ",\"trace_id\":\"" +
                JsonWriter::escape(result.trace_id) + "\"";
    switch (result.status) {
      case ServeResult::Status::Ok:
        line += ",\"status\":\"ok\",\"cached\":";
        line += result.cached ? "true" : "false";
        line += ",\"digest\":\"" + result.digest_hex + "\"";
        // Splice the stored bytes verbatim: a cache hit's report is
        // byte-identical to the miss that produced it.
        line += ",\"report\":" + result.report_json;
        break;
      case ServeResult::Status::Error:
        line += ",\"status\":\"error\",\"error\":\"" +
                JsonWriter::escape(result.error) + "\"";
        break;
      case ServeResult::Status::Rejected:
        line += ",\"status\":\"rejected\",\"error\":\"" +
                JsonWriter::escape(result.error) +
                "\",\"retry_after_ms\":" +
                std::to_string(result.retry_after_ms);
        break;
      case ServeResult::Status::Timeout:
        line += ",\"status\":\"timeout\",\"error\":\"" +
                JsonWriter::escape(result.error) + "\"";
        if (!result.digest_hex.empty())
            line += ",\"digest\":\"" + result.digest_hex + "\"";
        break;
    }
    line += "}";
    return line;
}

} // anonymous namespace

StudyService::StudyService(const ServiceOptions &options)
    : _options(options), _pool(options.workers),
      _cache(options.cache_entries, options.cache_dir),
      _flight(options.flight_entries)
{
    // Telemetry wiring: every read surface (the {"op":"stats"} line,
    // the /metrics exposition, the exit-stats JSON) pulls through the
    // registry, so they can never disagree about keys or semantics.
    _registry.addProvider(
        [this](obs::CounterSet &c) { appendServeCounters(c); });
    _registry.registerHistogram("serve.latency.hit_s", &_hit_latency);
    _registry.registerHistogram("serve.latency.cold_s",
                                &_cold_latency);
    // Point-in-time values; everything untagged is a monotonic
    // counter (Prometheus # TYPE and rate() depend on the split).
    _registry.tagGauge("serve.draining");
    _registry.tagGauge("serve.in_flight");
    _registry.tagGauge("serve.cache.entries");
    _registry.tagGauge("serve.queue.high_water");
    // Quantiles are point-in-time estimates; the latency .count and
    // .total_s keys stay counters (rate() over them is meaningful).
    _registry.tagGauge("serve.latency.hit.p50_ms");
    _registry.tagGauge("serve.latency.hit.p95_ms");
    _registry.tagGauge("serve.latency.hit.p99_ms");
    _registry.tagGauge("serve.latency.cold.p50_ms");
    _registry.tagGauge("serve.latency.cold.p95_ms");
    _registry.tagGauge("serve.latency.cold.p99_ms");
    _registry.tagGauge("serve.pool.threads");
    _registry.tagGauge("serve.pool.queue_high_water");
    _registry.tagGauge("serve.fault.points");

    // The watchdog needs asynchronous executions to observe; in
    // inline mode (workers == 0) handle() is the execution.
    if (_options.workers > 0 && _options.watchdog_factor > 0 &&
        _options.watchdog_interval_ms > 0) {
        _watchdog_pool = std::make_unique<exec::ThreadPool>(1);
        _watchdog_done =
            _watchdog_pool->submit([this] { watchdogLoop(); });
    }
}

StudyService::~StudyService()
{
    drain();
    if (_watchdog_pool) {
        {
            std::lock_guard<std::mutex> lock(_mutex);
            _watchdog_stop = true;
        }
        _watchdog_cv.notify_all();
        _watchdog_done.get();
        _watchdog_pool.reset();
    }
    std::lock_guard<std::mutex> lock(_trace_mutex);
    if (_trace)
        _trace->uninstall();
}

std::string
StudyService::execute(const Request &request,
                      const CancelToken *cancel)
{
    core::RunOptions opts = request.options;
    if (_options.max_study_threads != 0 &&
        (opts.threads == 0 ||
         opts.threads > _options.max_study_threads)) {
        opts.threads = _options.max_study_threads;
    }
    // Server mode: results stream back as JSON; nothing should write
    // to the console mid-request.
    opts.verbosity = core::Verbosity::Silent;
    opts.progress = nullptr;
    opts.cancel = cancel;

    std::ostringstream os;
    JsonWriter w(os, /*compact=*/true);
    w.beginObject();
    w.key("study").value(studyKindName(request.kind));
    switch (request.kind) {
      case StudyKind::Memory: {
        auto report = core::runMemoryStudy(opts, request.memory);
        noteReplayCounters(report.meta.counters);
        w.key("meta").beginObject();
        core::writeMetaJson(w, report.meta);
        w.endObject();
        w.key("payload");
        core::writeMemoryStudyResultJson(w, report.payload);
        break;
      }
      case StudyKind::Logic: {
        auto report = core::runLogicStudy(opts, request.logic);
        w.key("meta").beginObject();
        core::writeMetaJson(w, report.meta);
        w.endObject();
        w.key("payload");
        core::writeLogicStudyResultJson(w, report.payload);
        break;
      }
      case StudyKind::StackThermal: {
        auto report =
            core::runStackThermalStudy(opts, request.stack_thermal);
        w.key("meta").beginObject();
        core::writeMetaJson(w, report.meta);
        w.endObject();
        w.key("payload");
        core::writeStackThermalResultJson(w, report.payload);
        break;
      }
      case StudyKind::Sensitivity: {
        auto report =
            core::runConductivitySensitivity(opts,
                                             request.sensitivity);
        w.key("meta").beginObject();
        core::writeMetaJson(w, report.meta);
        w.endObject();
        w.key("payload");
        core::writeSensitivityResultJson(w, report.payload);
        break;
      }
    }
    w.endObject();
    return os.str();
}

void
StudyService::finalizeLocked(Execution &exec)
{
    if (exec.finalized)
        return;
    exec.finalized = true;
    _pending.erase(exec.digest);
    --_in_flight;
}

unsigned
StudyService::retryHintLocked() const
{
    // Rough time for the backlog to clear: how many worker "waves"
    // are queued ahead, times the cold p95. Before any cold sample
    // exists, assume a nominal 100 ms study.
    double p95_s = _cold_latency.snapshot().quantile(0.95);
    if (p95_s <= 0.0)
        p95_s = 0.1;
    unsigned workers = std::max(_options.workers, 1u);
    double waves =
        std::max(double(_in_flight) / double(workers), 1.0);
    double ms = 1e3 * p95_s * waves;
    return unsigned(std::min(std::max(ms, 1.0), 60000.0));
}

std::string
StudyService::makeTraceId()
{
    // An atomic sequence, not a clock or RNG: unique within the
    // process, cheap, and deterministic-replay friendly.
    std::uint64_t n =
        _trace_seq.fetch_add(1, std::memory_order_relaxed) + 1;
    char buf[24];
    std::snprintf(buf, sizeof(buf), "t-%llx",
                  static_cast<unsigned long long>(n));
    return std::string(buf);
}

void
StudyService::recordOutcome(const std::string &study,
                            const ServeResult &result,
                            double latency_ms)
{
    FlightEntry entry;
    entry.trace_id = result.trace_id;
    entry.digest_hex = result.digest_hex;
    entry.study = study;
    entry.status = statusName(result.status);
    entry.cached = result.cached;
    entry.coalesced = result.coalesced;
    entry.latency_ms = latency_ms;
    {
        std::lock_guard<std::mutex> lock(_mutex);
        entry.queue_depth = _in_flight;
    }
    _flight.note(std::move(entry));
}

void
StudyService::requestFlightDump()
{
    g_flight_dump_requested.store(true, std::memory_order_relaxed);
}

void
StudyService::pollFlightDump()
{
    if (g_flight_dump_requested.exchange(false,
                                         std::memory_order_relaxed))
        _flight.dumpToLog("sigusr1");
}

ServeResult
StudyService::handle(const std::string &line)
{
    WallTimer timer;
    ServeResult result;
    pollFlightDump();

    Request request;
    std::string error;
    if (!parseRequest(line, request, error)) {
        result.status = ServeResult::Status::Error;
        result.error = error;
        result.trace_id = request.trace_id.empty()
                              ? makeTraceId()
                              : request.trace_id;
        {
            std::lock_guard<std::mutex> lock(_mutex);
            ++_n_requests;
            ++_n_errors;
        }
        result.line = renderLine(result, request.id);
        recordOutcome("", result, 1e3 * timer.seconds());
        return result;
    }

    if (request.trace_id.empty())
        request.trace_id = makeTraceId();
    result.trace_id = request.trace_id;
    const std::string study = studyKindName(request.kind);

    obs::Span span("serve/" + study + " " + request.trace_id,
                   "serve");
    std::uint64_t digest = request.digest();
    result.digest_hex = digestHex(digest);
    // Every waiter times out against its own arrival-anchored
    // deadline, owner or coalesced alike.
    const auto deadline_tp =
        CancelToken::Clock::now() +
        std::chrono::milliseconds(request.deadline_ms);

    std::shared_ptr<Execution> exec;
    bool owner = false;
    {
        std::lock_guard<std::mutex> lock(_mutex);
        ++_n_requests;

        std::string cached;
        if (_cache.tryGet(digest, cached)) {
            result.status = ServeResult::Status::Ok;
            result.cached = true;
            result.report_json = std::move(cached);
            ++_n_ok;
            ++_n_hit;
            double elapsed = timer.seconds();
            _hit_seconds += elapsed;
            _hit_latency.record(elapsed);
        }
        if (result.cached) {
            // renderLine/recordOutcome outside the lock.
        } else {
            auto pending = _pending.find(digest);
            if (pending != _pending.end()) {
                exec = pending->second;
                result.coalesced = true;
                ++_n_coalesced;
            } else {
                unsigned limit = std::max(_options.workers, 1u) +
                                 _options.queue_limit;
                if (_draining || _in_flight >= limit) {
                    result.status = ServeResult::Status::Rejected;
                    result.retry_after_ms = retryHintLocked();
                    result.error =
                        _draining ? "server draining"
                                  : "server overloaded (" +
                                        std::to_string(_in_flight) +
                                        " requests in flight)";
                    ++_n_rejected;
                } else {
                    ++_in_flight;
                    _in_flight_high_water =
                        std::max(_in_flight_high_water, _in_flight);
                    exec = std::make_shared<Execution>();
                    exec->digest = digest;
                    exec->label = study;
                    exec->trace_id = request.trace_id;
                    exec->cancel = std::make_shared<CancelToken>(
                        request.deadline_ms);
                    exec->promise =
                        std::make_shared<std::promise<std::string>>();
                    exec->future =
                        exec->promise->get_future().share();
                    exec->started = CancelToken::Clock::now();
                    _pending[digest] = exec;
                    owner = true;
                }
            }
        }
    }
    if (result.cached ||
        result.status == ServeResult::Status::Rejected) {
        result.line = renderLine(result, request.id);
        recordOutcome(study, result, 1e3 * timer.seconds());
        return result;
    }

    if (owner) {
        // The task, not the owning handle() call, retires the
        // execution: an owner abandoning at its deadline frees the
        // admission slot immediately (finalize is once-only), and a
        // finished-but-abandoned result still reaches the cache.
        std::shared_ptr<Execution> task_exec = exec;
        (void)_pool.submit([this, request, task_exec] {
            try {
                std::string report =
                    execute(request, task_exec->cancel.get());
                {
                    std::lock_guard<std::mutex> lock(_mutex);
                    _cache.put(task_exec->digest, report);
                    finalizeLocked(*task_exec);
                }
                task_exec->promise->set_value(std::move(report));
            } catch (...) {
                {
                    std::lock_guard<std::mutex> lock(_mutex);
                    finalizeLocked(*task_exec);
                }
                task_exec->promise->set_exception(
                    std::current_exception());
            }
        });
    }

    std::future_status wait_status = std::future_status::ready;
    if (request.deadline_ms > 0)
        wait_status = exec->future.wait_until(deadline_tp);
    else
        exec->future.wait();

    if (wait_status != std::future_status::ready) {
        // Deadline expired with the execution still running: answer
        // now; the execution stops at its next cancel checkpoint.
        if (owner)
            exec->cancel->cancel();
        {
            std::lock_guard<std::mutex> lock(_mutex);
            if (owner)
                finalizeLocked(*exec);
            ++_n_timeouts;
        }
        result.status = ServeResult::Status::Timeout;
        result.error = "deadline of " +
                       std::to_string(request.deadline_ms) +
                       " ms expired";
        result.line = renderLine(result, request.id);
        recordOutcome(study, result, 1e3 * timer.seconds());
        return result;
    }

    try {
        result.report_json = exec->future.get();
        result.status = ServeResult::Status::Ok;
        std::lock_guard<std::mutex> lock(_mutex);
        ++_n_ok;
        ++_n_cold;
        double elapsed = timer.seconds();
        _cold_seconds += elapsed;
        _cold_latency.record(elapsed);
    } catch (const CancelledError &e) {
        // The execution observed cancellation (its own deadline, or
        // drain) before we hit ours: still a timeout to the client.
        result.status = ServeResult::Status::Timeout;
        result.error = e.what();
        std::lock_guard<std::mutex> lock(_mutex);
        ++_n_timeouts;
    } catch (const std::exception &e) {
        result.status = ServeResult::Status::Error;
        result.error = e.what();
        std::lock_guard<std::mutex> lock(_mutex);
        ++_n_errors;
    }
    result.line = renderLine(result, request.id);
    recordOutcome(study, result, 1e3 * timer.seconds());
    return result;
}

void
StudyService::drain()
{
    using Clock = CancelToken::Clock;
    bool first = false;
    unsigned backlog = 0;
    {
        std::lock_guard<std::mutex> lock(_mutex);
        first = !_draining;
        _draining = true;
        backlog = _in_flight;
    }
    // Idle teardowns (every test/bench service destruction) stay
    // silent; a drain with work to wind down is worth a log line.
    if (first && backlog > 0)
        logLine(LogLevel::Info, "drain started",
                {{"in_flight", std::to_string(backlog)}});
    auto waitIdle = [this](Clock::time_point until) {
        for (;;) {
            {
                std::lock_guard<std::mutex> lock(_mutex);
                if (_in_flight == 0)
                    return true;
            }
            if (Clock::now() >= until)
                return false;
            std::this_thread::sleep_for(
                std::chrono::milliseconds(5));
        }
    };
    auto budget =
        std::chrono::milliseconds(_options.drain_timeout_ms);
    if (waitIdle(Clock::now() + budget)) {
        if (first && backlog > 0)
            logLine(LogLevel::Info, "drain finished",
                    {{"cancelled", "0"}});
        return;
    }
    // Out of patience: cancel the stragglers and wait them out (a
    // cancelled study stops within one cell / CG iteration).
    unsigned cancelled = 0;
    {
        std::lock_guard<std::mutex> lock(_mutex);
        for (auto &entry : _pending) {
            entry.second->cancel->cancel();
            ++cancelled;
            logLine(LogLevel::Info, "drain cancelling execution",
                    {{"trace_id", entry.second->trace_id},
                     {"digest", digestHex(entry.second->digest)},
                     {"study", entry.second->label}});
        }
    }
    (void)waitIdle(Clock::now() + budget);
    logLine(LogLevel::Info, "drain finished",
            {{"cancelled", std::to_string(cancelled)}});
}

void
StudyService::noteOversizedLine()
{
    // Not counted as a request or an error: the line was bounced at
    // the transport before it ever became one.
    std::lock_guard<std::mutex> lock(_mutex);
    ++_n_line_overflows;
}

void
StudyService::watchdogLoop()
{
    std::unique_lock<std::mutex> lock(_mutex);
    while (!_watchdog_stop) {
        _watchdog_cv.wait_for(
            lock, std::chrono::milliseconds(
                      _options.watchdog_interval_ms));
        if (_watchdog_stop)
            break;
        lock.unlock();
        pollFlightDump();
        lock.lock();
        double p99_s = _cold_latency.snapshot().quantile(0.99);
        if (p99_s <= 0.0)
            continue;   // no cold baseline yet
        double limit_s = p99_s * double(_options.watchdog_factor);
        auto now = CancelToken::Clock::now();
        bool flagged_now = false;
        for (auto &entry : _pending) {
            Execution &exec = *entry.second;
            double run_s =
                std::chrono::duration<double>(now - exec.started)
                    .count();
            if (exec.flagged || run_s <= limit_s)
                continue;
            exec.flagged = true;
            flagged_now = true;
            ++_n_watchdog_flagged;
            char run_buf[32], limit_buf[32];
            std::snprintf(run_buf, sizeof(run_buf), "%.3f", run_s);
            std::snprintf(limit_buf, sizeof(limit_buf), "%.3f",
                          limit_s);
            // Info, not warn: warn() is captured into in-flight
            // study reports, which must stay deterministic.
            logLine(LogLevel::Info,
                    "serve watchdog: execution over limit",
                    {{"trace_id", exec.trace_id},
                     {"digest", digestHex(exec.digest)},
                     {"study", exec.label},
                     {"run_s", run_buf},
                     {"limit_s", limit_buf},
                     {"factor",
                      std::to_string(_options.watchdog_factor)}});
        }
        if (flagged_now) {
            // Context for the flag: what the daemon just did.
            lock.unlock();
            _flight.dumpToLog("watchdog");
            lock.lock();
        }
    }
}

namespace {

bool
endsWith(const std::string &s, const char *suffix)
{
    std::size_t n = std::strlen(suffix);
    return s.size() >= n &&
           s.compare(s.size() - n, n, suffix) == 0;
}

} // anonymous namespace

void
StudyService::noteReplayCounters(const obs::CounterSet &counters)
{
    // The study runner emits one set per stack option under
    // "mem.<option>."; the daemon-level view is the sum over options
    // and over requests (monotonic, so rate() works).
    double batches = 0.0, shards = 0.0, probes = 0.0, swar = 0.0;
    for (const auto &entry : counters.scalars()) {
        if (entry.first.compare(0, 4, "mem.") != 0)
            continue;
        if (endsWith(entry.first, ".replay.batches"))
            batches += entry.second;
        else if (endsWith(entry.first, ".replay.shards"))
            shards += entry.second;
        else if (endsWith(entry.first, ".tag_probe.probes"))
            probes += entry.second;
        else if (endsWith(entry.first, ".tag_probe.swar_hits"))
            swar += entry.second;
    }
    std::lock_guard<std::mutex> lock(_mutex);
    _replay_batches += batches;
    _replay_shards += shards;
    _tag_probes += probes;
    _tag_swar_hits += swar;
}

void
StudyService::appendServeCounters(obs::CounterSet &c) const
{
    obs::Histogram::Snapshot hit = _hit_latency.snapshot();
    obs::Histogram::Snapshot cold = _cold_latency.snapshot();
    std::lock_guard<std::mutex> lock(_mutex);
    c.set("serve.requests", double(_n_requests));
    c.set("serve.ok", double(_n_ok));
    c.set("serve.errors", double(_n_errors));
    c.set("serve.rejected", double(_n_rejected));
    c.set("serve.timeouts", double(_n_timeouts));
    c.set("serve.line_overflows", double(_n_line_overflows));
    c.set("serve.draining", _draining ? 1.0 : 0.0);
    c.set("serve.in_flight", double(_in_flight));
    c.set("serve.watchdog.flagged", double(_n_watchdog_flagged));
    c.set("serve.flight.noted", double(_flight.noted()));
    c.set("serve.cache.hits", double(_cache.stats().hits));
    c.set("serve.cache.misses", double(_cache.stats().misses));
    c.set("serve.cache.evictions", double(_cache.stats().evictions));
    c.set("serve.cache.disk_hits", double(_cache.stats().disk_hits));
    c.set("serve.cache.disk_writes",
          double(_cache.stats().disk_writes));
    c.set("serve.cache.corrupt", double(_cache.stats().corrupt));
    c.set("serve.cache.scrubbed", double(_cache.stats().scrubbed));
    c.set("serve.cache.entries", double(_cache.size()));
    c.set("serve.coalesced", double(_n_coalesced));
    c.set("serve.study.mem.replay.batches", _replay_batches);
    c.set("serve.study.mem.replay.shards", _replay_shards);
    c.set("serve.study.mem.tag_probe.probes", _tag_probes);
    c.set("serve.study.mem.tag_probe.swar_hits", _tag_swar_hits);
    c.set("serve.queue.high_water", double(_in_flight_high_water));
    c.set("serve.latency.hit.count", double(_n_hit));
    c.set("serve.latency.hit.total_s", _hit_seconds);
    c.set("serve.latency.hit.p50_ms", 1e3 * hit.quantile(0.50));
    c.set("serve.latency.hit.p95_ms", 1e3 * hit.quantile(0.95));
    c.set("serve.latency.hit.p99_ms", 1e3 * hit.quantile(0.99));
    c.set("serve.latency.cold.count", double(_n_cold));
    c.set("serve.latency.cold.total_s", _cold_seconds);
    c.set("serve.latency.cold.p50_ms", 1e3 * cold.quantile(0.50));
    c.set("serve.latency.cold.p95_ms", 1e3 * cold.quantile(0.95));
    c.set("serve.latency.cold.p99_ms", 1e3 * cold.quantile(0.99));
    _pool.appendCounters(c, "serve.pool.");
    // Fault-injection accounting, so a chaos run's schedule is
    // visible and two same-seed runs can be diffed.
    std::vector<FaultPointInfo> faults = FaultRegistry::snapshot();
    c.set("serve.fault.points", double(faults.size()));
    for (const FaultPointInfo &point : faults) {
        c.set("serve.fault." + point.name + ".checks",
              double(point.checks));
        c.set("serve.fault." + point.name + ".fires",
              double(point.fires));
    }
}

obs::CounterSet
StudyService::counters() const
{
    return _registry.counters();
}

std::string
StudyService::statsJson() const
{
    std::ostringstream os;
    JsonWriter w(os, /*compact=*/true);
    w.beginObject();
    w.key("schema_version").value(unsigned(obs::kSchemaVersion));
    w.key("status").value("ok");
    w.key("counters");
    obs::writeCountersJson(w, _registry.counters());
    w.key("histograms").beginObject();
    for (const auto &entry : _registry.histogramSnapshots()) {
        w.key(entry.first);
        entry.second.writeJson(w);
    }
    w.endObject();
    w.endObject();
    return os.str();
}

std::string
StudyService::healthJson() const
{
    bool draining;
    unsigned in_flight;
    std::uint64_t requests, flagged;
    {
        std::lock_guard<std::mutex> lock(_mutex);
        draining = _draining;
        in_flight = _in_flight;
        requests = _n_requests;
        flagged = _n_watchdog_flagged;
    }
    std::ostringstream os;
    JsonWriter w(os, /*compact=*/true);
    w.beginObject();
    w.key("schema_version").value(unsigned(obs::kSchemaVersion));
    w.key("status").value("ok");
    w.key("health").beginObject();
    w.key("ok").value(!draining);
    w.key("draining").value(draining);
    w.key("in_flight").value(in_flight);
    w.key("workers").value(_options.workers);
    w.key("queue_limit").value(_options.queue_limit);
    w.key("requests").value(std::uint64_t(requests));
    w.key("watchdog_flagged").value(std::uint64_t(flagged));
    w.key("tracing").value(obs::tracingActive());
    w.endObject();
    w.endObject();
    return os.str();
}

std::string
StudyService::flightJson() const
{
    std::ostringstream os;
    JsonWriter w(os, /*compact=*/true);
    w.beginObject();
    w.key("schema_version").value(unsigned(obs::kSchemaVersion));
    w.key("status").value("ok");
    w.key("flight").beginObject();
    w.key("capacity").value(std::uint64_t(_flight.capacity()));
    w.key("noted").value(_flight.noted());
    w.key("entries");
    _flight.writeJson(w);
    w.endObject();
    w.endObject();
    return os.str();
}

bool
StudyService::traceStart(std::string &error)
{
    std::lock_guard<std::mutex> lock(_trace_mutex);
    if (_trace && _trace->installed()) {
        error = "tracing already active";
        return false;
    }
    _trace = std::make_unique<obs::TraceCollector>();
    _trace->install();
    logLine(LogLevel::Info, "tracing started");
    return true;
}

bool
StudyService::traceStop(const std::string &path, std::string &message)
{
    std::lock_guard<std::mutex> lock(_trace_mutex);
    if (!_trace || !_trace->installed()) {
        message = "tracing not active";
        return false;
    }
    _trace->uninstall();
    std::ofstream out(path);
    if (!out) {
        message = "cannot write trace file '" + path + "'";
        return false;
    }
    _trace->writeChromeJson(out);
    std::size_t events = _trace->eventCount();
    message = "wrote " + std::to_string(events) + " events to " +
              path;
    logLine(LogLevel::Info, "tracing stopped",
            {{"path", path},
             {"events", std::to_string(events)}});
    return true;
}

} // namespace serve
} // namespace stack3d
