/**
 * @file
 * A minimal HTTP/1.1 GET endpoint for metric scrapes.
 *
 * stack3d-serve's wire protocol is NDJSON over a pipe or TCP — fine
 * for clients that speak it, useless for a Prometheus scraper or a
 * shell one-liner. MetricsHttpServer binds a second loopback port and
 * answers GET requests from a route table the daemon fills in
 * (/metrics → Prometheus text exposition, /healthz → health JSON).
 *
 * Deliberately not a web server: GET only, one connection serviced at
 * a time, Connection: close on every response. A scrape every few
 * seconds is the design load; anything heavier belongs on the wire
 * protocol. The accept loop runs on a single-thread exec::ThreadPool
 * and is woken for shutdown through a private self-pipe, mirroring
 * the main TCP transport's signal-race-free pattern.
 */

#ifndef STACK3D_SERVE_METRICS_HTTP_HH
#define STACK3D_SERVE_METRICS_HTTP_HH

#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace stack3d {

namespace exec {
class ThreadPool;
} // namespace exec

namespace serve {

/** Loopback HTTP GET server backed by a route table. Thread-safe. */
class MetricsHttpServer
{
  public:
    /** Produces one response body at request time. */
    using Renderer = std::function<std::string()>;

    MetricsHttpServer();
    ~MetricsHttpServer();   ///< calls stop()

    MetricsHttpServer(const MetricsHttpServer &) = delete;
    MetricsHttpServer &operator=(const MetricsHttpServer &) = delete;

    /**
     * Register @p path (exact match, e.g. "/metrics") to be answered
     * with @p renderer's output as @p content_type. Must be called
     * before start().
     */
    void addRoute(std::string path, std::string content_type,
                  Renderer renderer);

    /**
     * Bind 127.0.0.1:@p port (0 = kernel-assigned) and start the
     * accept loop. @return false (with a warn) when the bind fails.
     */
    bool start(unsigned port);

    /** Port actually bound (0 before start() succeeds). */
    unsigned boundPort() const { return _bound_port; }

    /** Stop the loop, close the socket, join the worker. Idempotent. */
    void stop();

  private:
    struct Route
    {
        std::string path;
        std::string content_type;
        Renderer renderer;
    };

    void serveLoop();
    void answer(int fd);

    std::vector<Route> _routes;
    int _listen_fd = -1;
    int _wake_pipe[2] = {-1, -1};
    unsigned _bound_port = 0;
    std::unique_ptr<exec::ThreadPool> _pool;
};

} // namespace serve
} // namespace stack3d

#endif // STACK3D_SERVE_METRICS_HTTP_HH
