/**
 * @file
 * Transport front-ends for StudyService: a pipe server reading
 * newline-delimited requests from a stream (the --stdin mode scripts
 * and CI use) and a TCP server accepting concurrent clients on
 * 127.0.0.1.
 *
 * Both speak the same protocol: one JSON request per line in, one
 * JSON response per line out. Control lines are handled by the
 * transport, not the service:
 *
 *   {"op": "counters"}  respond with the serve.* counter snapshot
 *   {"op": "stats"}     counters plus latency histogram snapshots
 *   {"op": "health"}    cheap liveness/readiness summary
 *   {"op": "flight"}    the flight recorder's last-N request ring
 *   {"op": "trace", "action": "start"}
 *   {"op": "trace", "action": "stop", "path": "trace.json"}
 *                       toggle a runtime tracing session
 *   {"op": "stop"}      respond, then shut the server down
 *
 * Robustness: request lines are capped at
 * ServiceOptions::max_line_bytes — an overlong line gets a clean
 * error response and the remainder is discarded, instead of growing
 * the buffer without bound. Both transports also poll the process
 * shutdown flag (requestShutdown(), set by the daemon's SIGTERM/
 * SIGINT handler) and exit their loops through the same drain path
 * as a stop op.
 */

#ifndef STACK3D_SERVE_SERVER_HH
#define STACK3D_SERVE_SERVER_HH

#include <atomic>
#include <cstdint>
#include <iosfwd>

#include "serve/service.hh"

namespace stack3d {
namespace serve {

/**
 * Serve requests from @p in to @p out until EOF or a stop op.
 * Requests are handled in arrival order on the calling thread (the
 * service's own pool still parallelizes each study internally).
 * @return the number of lines handled.
 */
std::uint64_t runPipeServer(StudyService &service, std::istream &in,
                            std::ostream &out);

/**
 * Accept TCP clients on 127.0.0.1:@p port (0 = kernel-assigned,
 * printed via inform) until a stop op arrives from any client. Each
 * connection is handled by a task on a exec::ThreadPool of
 * @p connection_threads workers, so that many clients can have
 * requests in flight — this is what drives the service's batching.
 * When @p bound_port is non-null it receives the port actually bound
 * (after a port-0 bind resolves) — tests use it to discover where to
 * connect.
 * @return 0 on clean shutdown, 1 on a socket setup error.
 */
int runTcpServer(StudyService &service, unsigned port,
                 unsigned connection_threads,
                 std::atomic<unsigned> *bound_port = nullptr);

/**
 * Ask every running transport loop to wind down as if a stop op had
 * arrived. Async-signal-safe (one relaxed atomic store) — this is
 * the function a SIGTERM/SIGINT handler calls.
 */
void requestShutdown();

/** True once requestShutdown() was called. */
bool shutdownRequested();

} // namespace serve
} // namespace stack3d

#endif // STACK3D_SERVE_SERVER_HH
