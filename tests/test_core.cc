/**
 * @file
 * Tests for the paper-level study APIs: the memory study, the
 * thermal studies, and the logic study (at reduced scale so the
 * suite stays fast).
 */

#include <gtest/gtest.h>

#include "core/logic_study.hh"
#include "core/memory_study.hh"
#include "core/thermal_study.hh"

using namespace stack3d;
using namespace stack3d::core;

// ---------------------------------------------------------------------
// memory study
// ---------------------------------------------------------------------

TEST(MemoryStudy, TinyRunProducesAllColumns)
{
    RunOptions opts;
    opts.depth = 0.02;
    opts.scale = 0.3;
    opts.verbosity = Verbosity::Silent;
    MemoryStudySpec spec;
    spec.benchmarks = {"gauss", "svd"};
    MemoryStudyResult result = runMemoryStudy(opts, spec).payload;

    ASSERT_EQ(result.rows.size(), 2u);
    for (const auto &row : result.rows) {
        EXPECT_GT(row.records, 0u);
        EXPECT_GT(row.footprint_mb, 0.0);
        for (int o = 0; o < 4; ++o) {
            EXPECT_GT(row.cpma[o], 0.0) << row.benchmark;
            EXPECT_GE(row.bw_gbps[o], 0.0);
            EXPECT_LE(row.bw_gbps[o], 16.5);   // bus cap
        }
    }
}

TEST(MemoryStudy, CapacitySensitiveBenchmarkImproves)
{
    RunOptions opts;
    opts.depth = 0.25;
    opts.verbosity = Verbosity::Silent;
    MemoryStudySpec spec;
    spec.benchmarks = {"gauss"};   // 6.2 MB: thrashes 4 MB, fits 12+
    MemoryStudyResult result = runMemoryStudy(opts, spec).payload;
    const auto &row = result.rows[0];
    EXPECT_GT(row.cpma[0], row.cpma[1] * 2.0);
    EXPECT_NEAR(row.cpma[1], row.cpma[2], row.cpma[1] * 0.25);
}

TEST(MemoryStudy, RecommendedBudgetsCoverAllBenchmarks)
{
    for (const std::string &name : workloads::rmsKernelNames())
        EXPECT_GE(recommendedRecordsPerThread(name), 1000000u) << name;
}

TEST(MemoryStudy, UnknownBenchmarkIsFatal)
{
    RunOptions opts;
    opts.verbosity = Verbosity::Silent;
    MemoryStudySpec spec;
    spec.benchmarks = {"bogus"};
    EXPECT_THROW(runMemoryStudy(opts, spec), std::runtime_error);
}

// ---------------------------------------------------------------------
// thermal studies
// ---------------------------------------------------------------------

namespace {

constexpr unsigned kNx = 27;   // coarse for test speed
constexpr unsigned kNy = 21;

} // anonymous namespace

TEST(ThermalStudy, PlanarBaselineNearFigure6)
{
    auto fp = floorplan::makeCore2Duo();
    ThermalPoint pt = solveFloorplanThermals(
        fp, thermal::StackedDieType::None, {}, {}, nullptr, kNx, kNy);
    // Figure 6: 88.35 C peak, 59 C coolest (coarse-grid tolerance).
    EXPECT_NEAR(pt.peak_c, 88.4, 2.5);
    EXPECT_NEAR(pt.min_c, 59.0, 2.5);
    EXPECT_DOUBLE_EQ(pt.total_power_w, 92.0);
}

TEST(ThermalStudy, StackOrderingMatchesFigure8)
{
    RunOptions opts;
    opts.verbosity = Verbosity::Silent;
    StackThermalSpec spec;
    spec.die_nx = kNx;
    spec.die_ny = kNy;
    StackThermalResult r = runStackThermalStudy(opts, spec).payload;
    double base = r.options[0].peak_c;
    double t12 = r.options[1].peak_c;
    double t32 = r.options[2].peak_c;
    double t64 = r.options[3].peak_c;

    // The SRAM option is the hottest; 32 MB DRAM is near-neutral;
    // 64 MB sits between (Figure 8a's ordering).
    EXPECT_GT(t12, t64);
    EXPECT_GT(t64, t32);
    EXPECT_NEAR(t32, base, 1.0);
    EXPECT_NEAR(t12 - base, 4.5, 2.0);
    EXPECT_NEAR(t64 - base, 1.9, 1.5);
}

TEST(ThermalStudy, SensitivityCurvesRiseAsConductivityFalls)
{
    RunOptions opts;
    opts.verbosity = Verbosity::Silent;
    SensitivitySpec spec;
    spec.conductivities = {60, 12, 3};
    spec.die_nx = 20;
    spec.die_ny = 18;
    auto points = runConductivitySensitivity(opts, spec).payload;
    ASSERT_EQ(points.size(), 3u);
    // Peak temperature increases monotonically as k drops.
    EXPECT_LT(points[0].peak_cu_swept, points[1].peak_cu_swept);
    EXPECT_LT(points[1].peak_cu_swept, points[2].peak_cu_swept);
    EXPECT_LT(points[0].peak_bond_swept, points[2].peak_bond_swept);
    // The Cu metal layer is the more sensitive one (Figure 3).
    double cu_swing =
        points[2].peak_cu_swept - points[0].peak_cu_swept;
    double bond_swing =
        points[2].peak_bond_swept - points[0].peak_bond_swept;
    EXPECT_GT(cu_swing, bond_swing);
}

// ---------------------------------------------------------------------
// logic study
// ---------------------------------------------------------------------

TEST(LogicStudy, EndToEndShape)
{
    RunOptions opts;
    opts.seed = 7;   // the retired wrapper's suite seed
    opts.verbosity = Verbosity::Silent;
    LogicStudySpec spec;
    spec.suite.uops_per_trace = 8000;
    spec.die_nx = 25;
    spec.die_ny = 23;
    LogicStudyResult r = runLogicStudy(opts, spec).payload;

    // Table 4: ten rows, positive total gain.
    EXPECT_EQ(r.table4.rows.size(), 10u);
    EXPECT_GT(r.table4.total_perf_gain_pct, 5.0);

    // Power roll-up ~15%.
    EXPECT_NEAR(r.power_saving_3d, 0.15, 0.03);

    // Figure 11 ordering: planar < 3D < worst case.
    EXPECT_LT(r.fig11.planar.peak_c, r.fig11.stacked.peak_c);
    EXPECT_LT(r.fig11.stacked.peak_c, r.fig11.worst_case.peak_c);
    EXPECT_GT(r.fig11.worst_density_ratio,
              r.fig11.stacked_density_ratio);

    // Table 5: five rows; same-temp row lands near the baseline
    // temperature; same-perf row is the coolest.
    ASSERT_EQ(r.table5.size(), 5u);
    EXPECT_NEAR(r.table5[3].temp_c, r.table5[0].temp_c, 6.0);
    EXPECT_LT(r.table5[4].temp_c, r.table5[0].temp_c);
    // Same Pwr is the hottest row.
    for (std::size_t i = 0; i < r.table5.size(); ++i)
        EXPECT_LE(r.table5[i].temp_c, r.table5[1].temp_c + 1e-9);
}
