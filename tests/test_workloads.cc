/**
 * @file
 * Tests for the workload generators: the 12 RMS kernels (Table 1),
 * the CSR structure builder, and the synthetic CPU µop streams.
 */

#include <gtest/gtest.h>

#include <set>

#include "workloads/cpu_workload.hh"
#include "workloads/registry.hh"
#include "workloads/sparse_util.hh"

using namespace stack3d;
using namespace stack3d::workloads;

// ---------------------------------------------------------------------
// registry
// ---------------------------------------------------------------------

TEST(Registry, HasTwelveKernelsInFigure5Order)
{
    auto names = rmsKernelNames();
    ASSERT_EQ(names.size(), 12u);
    EXPECT_EQ(names.front(), "conj");
    EXPECT_EQ(names[2], "gauss");
    EXPECT_EQ(names.back(), "svm");
}

TEST(Registry, UnknownNameIsFatal)
{
    EXPECT_THROW(makeRmsKernel("notakernel"), std::runtime_error);
}

TEST(Registry, MakeAllProducesDistinctNames)
{
    auto all = makeAllRmsKernels();
    std::set<std::string> names;
    for (const auto &k : all)
        names.insert(k->name());
    EXPECT_EQ(names.size(), 12u);
}

// ---------------------------------------------------------------------
// per-kernel properties (parameterized over all 12)
// ---------------------------------------------------------------------

class KernelTest : public ::testing::TestWithParam<std::string>
{
  protected:
    WorkloadConfig
    smallConfig() const
    {
        WorkloadConfig cfg;
        cfg.records_per_thread = 20000;
        cfg.scale = 0.1;
        return cfg;
    }
};

TEST_P(KernelTest, GeneratesValidTrace)
{
    auto kernel = makeRmsKernel(GetParam());
    trace::TraceBuffer buf = kernel->generate(smallConfig());
    EXPECT_GE(buf.size(), 40000u * 9 / 10);
    EXPECT_TRUE(buf.validate());
}

TEST_P(KernelTest, BothCpusContribute)
{
    auto kernel = makeRmsKernel(GetParam());
    trace::TraceStats st =
        kernel->generate(smallConfig()).computeStats();
    EXPECT_GT(st.records_cpu0, 0u);
    EXPECT_GT(st.records_cpu1, 0u);
    // Threads split work roughly evenly.
    double ratio = double(st.records_cpu0) /
                   double(st.records_cpu0 + st.records_cpu1);
    EXPECT_NEAR(ratio, 0.5, 0.2);
}

TEST_P(KernelTest, DeterministicForSameSeed)
{
    auto kernel = makeRmsKernel(GetParam());
    WorkloadConfig cfg = smallConfig();
    cfg.records_per_thread = 5000;
    trace::TraceBuffer a = kernel->generate(cfg);
    trace::TraceBuffer b = kernel->generate(cfg);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        ASSERT_TRUE(a[i] == b[i]) << "record " << i;
}

TEST_P(KernelTest, FootprintMatchesTouchedLines)
{
    auto kernel = makeRmsKernel(GetParam());
    WorkloadConfig cfg = smallConfig();
    cfg.records_per_thread = 100000;   // enough to sweep at 0.1 scale
    trace::TraceBuffer buf = kernel->generate(cfg);
    trace::TraceStats st = buf.computeStats();
    // Touched bytes never exceed the declared footprint by more
    // than rounding (the declared value ignores padding).
    EXPECT_LE(st.footprint_bytes,
              kernel->nominalFootprintBytes(cfg) * 5 / 4 + 65536);
}

TEST_P(KernelTest, HasDescription)
{
    auto kernel = makeRmsKernel(GetParam());
    EXPECT_GT(std::string(kernel->description()).size(), 10u);
}

INSTANTIATE_TEST_SUITE_P(
    AllKernels, KernelTest,
    ::testing::Values("conj", "dSym", "gauss", "pcg", "sMVM", "sSym",
                      "sTrans", "sAVDF", "sAVIF", "sUS", "svd", "svm"));

// ---------------------------------------------------------------------
// capacity-class calibration (Figure 5's structure)
// ---------------------------------------------------------------------

TEST(KernelFootprints, StraddleTheCapacityPoints)
{
    WorkloadConfig cfg;   // scale 1.0
    auto mb = [&](const char *name) {
        return double(makeRmsKernel(name)->nominalFootprintBytes(cfg)) /
               (1 << 20);
    };
    // Fit inside the 4 MB baseline.
    for (const char *name : {"conj", "dSym", "sSym", "sAVDF", "sAVIF",
                             "svd"})
        EXPECT_LT(mb(name), 4.0) << name;
    // gauss fits from 12 MB.
    EXPECT_GT(mb("gauss"), 4.0);
    EXPECT_LT(mb("gauss"), 12.0);
    // These need the 32 MB option.
    for (const char *name : {"pcg", "sMVM", "sTrans", "svm"}) {
        EXPECT_GT(mb(name), 12.0) << name;
        EXPECT_LT(mb(name), 32.0) << name;
    }
    // sUS only fits in 64 MB (with tags/overheads, marginal at 32).
    EXPECT_GT(mb("sUS"), 28.0);
    EXPECT_LT(mb("sUS"), 64.0);
}

TEST(KernelDeps, SparseKernelsCarryIndexDependencies)
{
    WorkloadConfig cfg;
    cfg.records_per_thread = 30000;
    cfg.scale = 0.1;
    for (const char *name : {"sMVM", "sSym", "sTrans", "sAVDF"}) {
        auto st = makeRmsKernel(name)->generate(cfg).computeStats();
        EXPECT_GT(double(st.num_with_dep) / double(st.num_records),
                  0.3)
            << name << " should have gather dependencies";
    }
}

// ---------------------------------------------------------------------
// CSR builder
// ---------------------------------------------------------------------

class CsrTest
    : public ::testing::TestWithParam<std::tuple<int, int, int>>
{
};

TEST_P(CsrTest, StructureIsWellFormed)
{
    auto [rows, cols, nnz_per_row] = GetParam();
    Random rng(5);
    CsrPattern csr = makeRandomCsr(rows, cols, nnz_per_row, rng);

    EXPECT_EQ(csr.rows, std::uint64_t(rows));
    EXPECT_EQ(csr.nnz(), std::uint64_t(rows) * nnz_per_row);
    ASSERT_EQ(csr.row_ptr.size(), std::size_t(rows) + 1);
    EXPECT_EQ(csr.row_ptr[0], 0u);
    EXPECT_EQ(csr.row_ptr[rows], csr.nnz());

    for (int r = 0; r < rows; ++r) {
        std::uint64_t lo = csr.row_ptr[r];
        std::uint64_t hi = csr.row_ptr[r + 1];
        EXPECT_EQ(hi - lo, std::uint64_t(nnz_per_row));
        for (std::uint64_t e = lo; e < hi; ++e) {
            EXPECT_LT(csr.col_idx[e], std::uint64_t(cols));
            if (e > lo) {
                EXPECT_LT(csr.col_idx[e - 1], csr.col_idx[e])
                    << "columns must be sorted and distinct";
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, CsrTest,
    ::testing::Values(std::make_tuple(10, 10, 3),
                      std::make_tuple(100, 100, 8),
                      std::make_tuple(50, 200, 4),
                      std::make_tuple(1000, 1000, 6)));

TEST(Csr, DeterministicForSameSeed)
{
    Random a(9), b(9);
    CsrPattern ca = makeRandomCsr(64, 64, 4, a);
    CsrPattern cb = makeRandomCsr(64, 64, 4, b);
    EXPECT_EQ(ca.col_idx, cb.col_idx);
}

TEST(CsrDeathTest, RejectsBadShapes)
{
    Random rng(1);
    EXPECT_DEATH(makeRandomCsr(0, 10, 1, rng), "");
    EXPECT_DEATH(makeRandomCsr(10, 10, 11, rng), "");
}

// ---------------------------------------------------------------------
// CPU workloads
// ---------------------------------------------------------------------

TEST(CpuWorkload, ClassesCoverThePopulations)
{
    auto classes = cpuAppClasses(false);
    std::set<std::string> names;
    for (const auto &cls : classes)
        names.insert(cls.name);
    for (const char *expect :
         {"specint", "specfp", "kernels", "multimedia", "internet",
          "productivity", "server", "workstation"})
        EXPECT_TRUE(names.count(expect)) << expect;
}

TEST(CpuWorkload, FullSuiteHas650PlusTraces)
{
    unsigned total = 0;
    for (const auto &cls : cpuAppClasses(true))
        total += cls.variants;
    EXPECT_GE(total, 650u);
}

TEST(CpuWorkload, TraceMixTracksParameters)
{
    CpuWorkloadParams p;
    p.name = "test";
    p.frac_load = 0.3;
    p.frac_store = 0.1;
    p.frac_branch = 0.1;
    p.store_burst = 4.0;
    auto uops = generateCpuTrace(p, 100000, 3);

    double loads = 0, stores = 0, branches = 0;
    for (const auto &u : uops) {
        loads += u.cls == UopClass::Load;
        stores += u.cls == UopClass::Store;
        branches += u.cls == UopClass::Branch;
    }
    double n = double(uops.size());
    EXPECT_NEAR(loads / n, 0.3, 0.03);
    EXPECT_NEAR(stores / n, 0.1, 0.04);   // bursts add variance
    EXPECT_NEAR(branches / n, 0.1, 0.02);
}

TEST(CpuWorkload, DependencyDistancesBounded)
{
    CpuWorkloadParams p;
    p.name = "test";
    auto uops = generateCpuTrace(p, 20000, 11);
    for (std::size_t i = 0; i < uops.size(); ++i) {
        for (int s = 0; s < 2; ++s)
            EXPECT_LE(uops[i].src_dist[s], i)
                << "dep reaches before the trace start";
    }
}

TEST(CpuWorkload, MispredictsOnlyOnBranches)
{
    CpuWorkloadParams p;
    p.name = "test";
    p.mispredict_rate = 0.5;
    auto uops = generateCpuTrace(p, 20000, 13);
    for (const auto &u : uops) {
        if (u.mispredict) {
            EXPECT_EQ(u.cls, UopClass::Branch);
        }
    }
}

TEST(CpuWorkload, VariantJitterIsDeterministic)
{
    auto classes = cpuAppClasses(false);
    CpuWorkloadParams a = makeVariantParams(classes[0], 3);
    CpuWorkloadParams b = makeVariantParams(classes[0], 3);
    EXPECT_DOUBLE_EQ(a.frac_load, b.frac_load);
    EXPECT_DOUBLE_EQ(a.mispredict_rate, b.mispredict_rate);

    CpuWorkloadParams c = makeVariantParams(classes[0], 4);
    EXPECT_NE(a.frac_load, c.frac_load);
}

TEST(CpuWorkload, OverfullMixIsFatal)
{
    CpuWorkloadParams p;
    p.name = "bad";
    p.frac_load = 0.9;
    p.frac_fp = 0.9;
    EXPECT_THROW(generateCpuTrace(p, 100, 1), std::runtime_error);
}

TEST(CpuWorkload, FpChainsLinkToFpProducers)
{
    CpuWorkloadParams p;
    p.name = "fp";
    p.frac_fp = 0.5;
    p.fp_chain = 1.0;
    p.frac_load = 0.0;
    p.frac_store = 0.0;
    p.frac_branch = 0.0;
    auto uops = generateCpuTrace(p, 10000, 17);
    unsigned chained = 0;
    for (std::size_t i = 1; i < uops.size(); ++i) {
        if (uops[i].cls != UopClass::FpOp || uops[i].src_dist[0] == 0)
            continue;
        std::size_t producer = i - uops[i].src_dist[0];
        if (uops[producer].cls == UopClass::FpOp)
            ++chained;
    }
    EXPECT_GT(chained, 1000u);
}
