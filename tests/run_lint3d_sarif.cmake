# SARIF shape gate: emit SARIF for the fixture corpus (which always
# has findings) and validate it against the SARIF 2.1.0 structure
# GitHub code scanning requires, using CMake's JSON parser — a
# malformed document fails the string(JSON) calls outright.
#
#   cmake -DLINT3D=<exe> -DFIXTURES=<dir> -DOUT=<file> -P run_lint3d_sarif.cmake

foreach(var LINT3D FIXTURES OUT)
    if(NOT DEFINED ${var})
        message(FATAL_ERROR "run_lint3d_sarif.cmake: -D${var}=... is required")
    endif()
endforeach()

execute_process(
    COMMAND "${LINT3D}" --root "${FIXTURES}"
            --config "${FIXTURES}/lint3d.toml" --sarif "${OUT}"
    OUTPUT_QUIET ERROR_QUIET
    RESULT_VARIABLE rc)
if(NOT rc EQUAL 1)
    message(FATAL_ERROR
        "lint3d exited with ${rc} on the fixture corpus (expected 1)")
endif()

file(READ "${OUT}" sarif)

macro(expect_json var msg)
    if("${${var}}" MATCHES "NOTFOUND")
        message(FATAL_ERROR "SARIF: ${msg}: ${${var}}")
    endif()
endmacro()

string(JSON version ERROR_VARIABLE err GET "${sarif}" "version")
expect_json(version "missing 'version'")
if(NOT version STREQUAL "2.1.0")
    message(FATAL_ERROR "SARIF version is '${version}', expected 2.1.0")
endif()

string(JSON schema ERROR_VARIABLE err GET "${sarif}" "$schema")
expect_json(schema "missing '$schema'")
if(NOT schema MATCHES "sarif-schema-2\\.1\\.0")
    message(FATAL_ERROR "SARIF \$schema does not name 2.1.0: ${schema}")
endif()

string(JSON driver_name ERROR_VARIABLE err
       GET "${sarif}" "runs" 0 "tool" "driver" "name")
expect_json(driver_name "missing runs[0].tool.driver.name")
if(NOT driver_name STREQUAL "lint3d")
    message(FATAL_ERROR "driver name is '${driver_name}'")
endif()

string(JSON n_rules ERROR_VARIABLE err
       LENGTH "${sarif}" "runs" 0 "tool" "driver" "rules")
expect_json(n_rules "missing driver rule catalog")
if(n_rules LESS 15)
    message(FATAL_ERROR "only ${n_rules} rules in the SARIF catalog")
endif()

string(JSON n_results ERROR_VARIABLE err
       LENGTH "${sarif}" "runs" 0 "results")
expect_json(n_results "missing runs[0].results")
if(n_results LESS 1)
    message(FATAL_ERROR "fixture SARIF has no results")
endif()

# Every result needs ruleId, level, message.text, and a physical
# location with uri + startLine — the fields code scanning renders.
math(EXPR last "${n_results} - 1")
foreach(i RANGE 0 ${last})
    string(JSON rule_id ERROR_VARIABLE err
           GET "${sarif}" "runs" 0 "results" ${i} "ruleId")
    expect_json(rule_id "result ${i} missing ruleId")
    string(JSON level ERROR_VARIABLE err
           GET "${sarif}" "runs" 0 "results" ${i} "level")
    expect_json(level "result ${i} missing level")
    if(NOT level MATCHES "^(error|warning|note)$")
        message(FATAL_ERROR "result ${i} has bad level '${level}'")
    endif()
    string(JSON msg ERROR_VARIABLE err
           GET "${sarif}" "runs" 0 "results" ${i} "message" "text")
    expect_json(msg "result ${i} missing message.text")
    string(JSON uri ERROR_VARIABLE err
           GET "${sarif}" "runs" 0 "results" ${i} "locations" 0
           "physicalLocation" "artifactLocation" "uri")
    expect_json(uri "result ${i} missing artifact uri")
    string(JSON start ERROR_VARIABLE err
           GET "${sarif}" "runs" 0 "results" ${i} "locations" 0
           "physicalLocation" "region" "startLine")
    expect_json(start "result ${i} missing region.startLine")
    if(start LESS 1)
        message(FATAL_ERROR "result ${i} startLine=${start} (< 1)")
    endif()
endforeach()
