/**
 * @file
 * Unit tests for the common substrate: logging, statistics, RNG,
 * units, tables, and the event queue.
 */

#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "common/event_queue.hh"
#include "common/logging.hh"
#include "common/random.hh"
#include "common/stats.hh"
#include "common/table.hh"
#include "common/units.hh"

using namespace stack3d;

// ---------------------------------------------------------------------
// logging
// ---------------------------------------------------------------------

TEST(Logging, FatalThrows)
{
    EXPECT_THROW(stack3d_fatal("user error: ", 42), std::runtime_error);
}

TEST(Logging, WarnCounts)
{
    detail::setQuiet(true);
    unsigned long before = detail::warnCount();
    warn("something odd: ", 1);
    warn("more oddities");
    EXPECT_EQ(detail::warnCount(), before + 2);
    detail::setQuiet(false);
}

TEST(LoggingDeathTest, PanicAborts)
{
    EXPECT_DEATH(stack3d_panic("invariant broken"), "panic");
}

TEST(LoggingDeathTest, AssertAborts)
{
    EXPECT_DEATH(stack3d_assert(1 == 2, "math failed"), "assertion");
}

TEST(Logging, AssertPassesSilently)
{
    stack3d_assert(true, "never shown");
    SUCCEED();
}

// ---------------------------------------------------------------------
// stats
// ---------------------------------------------------------------------

TEST(Stats, ScalarAccumulates)
{
    stats::StatGroup group("g");
    stats::Scalar s(&group, "count", "a counter");
    s += 2.5;
    ++s;
    EXPECT_DOUBLE_EQ(s.value(), 3.5);
    s = 7.0;
    EXPECT_DOUBLE_EQ(s.value(), 7.0);
    s.reset();
    EXPECT_DOUBLE_EQ(s.value(), 0.0);
}

TEST(Stats, AverageMean)
{
    stats::StatGroup group("g");
    stats::Average avg(&group, "avg", "an average");
    avg.sample(1.0);
    avg.sample(2.0);
    avg.sample(6.0);
    EXPECT_DOUBLE_EQ(avg.mean(), 3.0);
    EXPECT_EQ(avg.count(), 3u);
    EXPECT_DOUBLE_EQ(avg.sum(), 9.0);
}

TEST(Stats, AverageEmptyIsZero)
{
    stats::StatGroup group("g");
    stats::Average avg(&group, "avg", "empty");
    EXPECT_DOUBLE_EQ(avg.mean(), 0.0);
}

TEST(Stats, DistributionBucketsAndMoments)
{
    stats::StatGroup group("g");
    stats::Distribution d(&group, "d", "dist", 0.0, 10.0, 10);
    for (int i = 0; i < 10; ++i)
        d.sample(double(i) + 0.5);
    d.sample(-1.0);   // underflow
    d.sample(42.0);   // overflow

    EXPECT_EQ(d.count(), 12u);
    EXPECT_EQ(d.underflows(), 1u);
    EXPECT_EQ(d.overflows(), 1u);
    for (unsigned b = 0; b < 10; ++b)
        EXPECT_EQ(d.bucketCount(b), 1u) << "bucket " << b;
    EXPECT_DOUBLE_EQ(d.min(), -1.0);
    EXPECT_DOUBLE_EQ(d.max(), 42.0);
    EXPECT_GT(d.stddev(), 0.0);
}

TEST(Stats, DistributionReset)
{
    stats::StatGroup group("g");
    stats::Distribution d(&group, "d", "dist", 0.0, 1.0, 4);
    d.sample(0.5);
    d.reset();
    EXPECT_EQ(d.count(), 0u);
    EXPECT_EQ(d.bucketCount(2), 0u);
}

TEST(Stats, FormulaComputesAtReadTime)
{
    stats::StatGroup group("g");
    stats::Scalar a(&group, "a", "");
    stats::Scalar b(&group, "b", "");
    stats::Formula ratio(&group, "ratio", "a/b", [&]() {
        // Exact-zero divisor guard. lint3d: safe-float-eq-ok
        return b.value() != 0.0 ? a.value() / b.value() : 0.0;
    });
    a = 6.0;
    b = 3.0;
    EXPECT_DOUBLE_EQ(ratio.value(), 2.0);
    b = 4.0;
    EXPECT_DOUBLE_EQ(ratio.value(), 1.5);
}

TEST(Stats, GroupDumpContainsAll)
{
    stats::StatGroup root("sim");
    stats::StatGroup child("cache", &root);
    stats::Scalar hits(&child, "hits", "cache hits");
    hits = 5;
    std::ostringstream os;
    root.dump(os);
    EXPECT_NE(os.str().find("sim.cache.hits"), std::string::npos);
    EXPECT_NE(os.str().find("cache hits"), std::string::npos);
}

TEST(Stats, GroupFindStat)
{
    stats::StatGroup group("g");
    stats::Scalar s(&group, "present", "");
    EXPECT_EQ(group.findStat("present"), &s);
    EXPECT_EQ(group.findStat("absent"), nullptr);
}

TEST(Stats, GroupResetAllRecurses)
{
    stats::StatGroup root("r");
    stats::StatGroup child("c", &root);
    stats::Scalar s(&child, "s", "");
    s = 9.0;
    root.resetAll();
    EXPECT_DOUBLE_EQ(s.value(), 0.0);
}

// ---------------------------------------------------------------------
// random
// ---------------------------------------------------------------------

TEST(Random, DeterministicAcrossInstances)
{
    Random a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Random, DifferentSeedsDiffer)
{
    Random a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 2);
}

class RandomBoundTest : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(RandomBoundTest, UniformIntStaysInBound)
{
    Random rng(7);
    std::uint64_t bound = GetParam();
    for (int i = 0; i < 2000; ++i)
        EXPECT_LT(rng.uniformInt(bound), bound);
}

INSTANTIATE_TEST_SUITE_P(Bounds, RandomBoundTest,
                         ::testing::Values(1, 2, 3, 10, 255, 1 << 20,
                                           std::uint64_t(1) << 40));

TEST(Random, UniformIntCoversSmallRange)
{
    Random rng(11);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 200; ++i)
        seen.insert(rng.uniformInt(4));
    EXPECT_EQ(seen.size(), 4u);
}

TEST(Random, UniformDoubleInUnitInterval)
{
    Random rng(3);
    for (int i = 0; i < 2000; ++i) {
        double v = rng.uniformDouble();
        EXPECT_GE(v, 0.0);
        EXPECT_LT(v, 1.0);
    }
}

TEST(Random, UniformDoubleRange)
{
    Random rng(5);
    for (int i = 0; i < 500; ++i) {
        double v = rng.uniformDouble(-2.0, 3.0);
        EXPECT_GE(v, -2.0);
        EXPECT_LT(v, 3.0);
    }
}

TEST(Random, ChanceExtremes)
{
    Random rng(9);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.chance(0.0));
        EXPECT_TRUE(rng.chance(1.0));
    }
}

TEST(Random, ChanceApproximatesProbability)
{
    Random rng(13);
    int hits = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        hits += rng.chance(0.25);
    EXPECT_NEAR(double(hits) / n, 0.25, 0.02);
}

TEST(Random, RunLengthCapped)
{
    Random rng(17);
    for (int i = 0; i < 200; ++i)
        EXPECT_LE(rng.runLength(0.9, 5), 5u);
}

// ---------------------------------------------------------------------
// units
// ---------------------------------------------------------------------

TEST(Units, Conversions)
{
    EXPECT_DOUBLE_EQ(units::fromMicrometres(750.0), 750e-6);
    EXPECT_DOUBLE_EQ(units::fromMillimetres(13.5), 13.5e-3);
    EXPECT_EQ(units::fromMiB(4), 4u << 20);
    EXPECT_EQ(units::fromKiB(32), 32u << 10);
}

TEST(Units, BandwidthMath)
{
    // 16 GB over 1 second = 16 GB/s.
    EXPECT_DOUBLE_EQ(units::toGBps(16e9, 1.0), 16.0);
    EXPECT_DOUBLE_EQ(units::toGBps(1e9, 0.0), 0.0);
}

TEST(Units, PowerOfTwo)
{
    EXPECT_TRUE(units::isPowerOfTwo(1));
    EXPECT_TRUE(units::isPowerOfTwo(4096));
    EXPECT_FALSE(units::isPowerOfTwo(0));
    EXPECT_FALSE(units::isPowerOfTwo(12288));
}

TEST(Units, FloorLog2)
{
    EXPECT_EQ(units::floorLog2(1), 0u);
    EXPECT_EQ(units::floorLog2(64), 6u);
    EXPECT_EQ(units::floorLog2(65), 6u);
    EXPECT_EQ(units::floorLog2(std::uint64_t(1) << 40), 40u);
}

// ---------------------------------------------------------------------
// table
// ---------------------------------------------------------------------

TEST(Table, PrintsAlignedColumns)
{
    TextTable t({"name", "value"});
    t.newRow().cell("a").cell(1.5, 1);
    t.newRow().cell("long-name").cell((long long)42);
    std::ostringstream os;
    t.print(os);
    std::string out = os.str();
    EXPECT_NE(out.find("name"), std::string::npos);
    EXPECT_NE(out.find("long-name"), std::string::npos);
    EXPECT_NE(out.find("1.5"), std::string::npos);
    EXPECT_NE(out.find("42"), std::string::npos);
    EXPECT_EQ(t.numRows(), 2u);
}

TEST(Table, CsvFormat)
{
    TextTable t({"a", "b"});
    t.newRow().cell("x").cell((long long)1);
    std::ostringstream os;
    t.printCsv(os);
    EXPECT_EQ(os.str(), "a,b\nx,1\n");
}

TEST(TableDeathTest, TooManyCellsPanics)
{
    TextTable t({"only"});
    t.newRow().cell("one");
    EXPECT_DEATH(t.cell("two"), "more cells");
}

// ---------------------------------------------------------------------
// event queue
// ---------------------------------------------------------------------

TEST(EventQueue, RunsInTimeOrder)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(30, [&] { order.push_back(3); });
    q.schedule(10, [&] { order.push_back(1); });
    q.schedule(20, [&] { order.push_back(2); });
    q.runAll();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(q.now(), 30u);
}

TEST(EventQueue, TiesAreFifo)
{
    EventQueue q;
    std::vector<int> order;
    for (int i = 0; i < 5; ++i)
        q.schedule(5, [&order, i] { order.push_back(i); });
    q.runAll();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, EventsCanScheduleEvents)
{
    EventQueue q;
    int fired = 0;
    q.schedule(1, [&] {
        q.schedule(q.now() + 5, [&] { ++fired; });
    });
    q.runAll();
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(q.now(), 6u);
}

TEST(EventQueue, RunUntilStopsAtLimit)
{
    EventQueue q;
    int fired = 0;
    q.schedule(5, [&] { ++fired; });
    q.schedule(15, [&] { ++fired; });
    q.runUntil(10);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(q.now(), 10u);
    EXPECT_EQ(q.size(), 1u);
}

TEST(EventQueue, RunOneOnEmptyReturnsFalse)
{
    EventQueue q;
    EXPECT_FALSE(q.runOne());
    EXPECT_TRUE(q.empty());
}

TEST(EventQueueDeathTest, PastSchedulingPanics)
{
    EventQueue q;
    q.schedule(10, [] {});
    q.runAll();
    EXPECT_DEATH(q.schedule(5, [] {}), "past");
}

// ---------------------------------------------------------------------
// fault injection registry
// ---------------------------------------------------------------------

#include <cstdio>
#include <fstream>
#include <thread>

#include "common/cancel.hh"
#include "common/fault.hh"

namespace {

/** Drives one point @p n times; returns how often it fired. */
std::uint64_t
fireCount(const char *point, unsigned n)
{
    std::uint64_t fires = 0;
    for (unsigned i = 0; i < n; ++i)
        if (S3D_FAULT_POINT(point))
            ++fires;
    return fires;
}

} // anonymous namespace

TEST(FaultRegistry, DisabledByDefaultAndAfterReset)
{
    FaultRegistry::reset();
    EXPECT_FALSE(FaultRegistry::enabled());
    EXPECT_EQ(fireCount("never.configured", 100), 0u);
    EXPECT_TRUE(FaultRegistry::snapshot().empty());
}

TEST(FaultRegistry, InlineSpecConfiguresPoints)
{
    std::string error;
    ASSERT_TRUE(FaultRegistry::configure(
        "disk.write:0.5,task.slow:0.25:20", 7, error))
        << error;
    EXPECT_TRUE(FaultRegistry::enabled());

    auto points = FaultRegistry::snapshot();
    ASSERT_EQ(points.size(), 2u);
    // Snapshot is name-sorted.
    EXPECT_EQ(points[0].name, "disk.write");
    EXPECT_DOUBLE_EQ(points[0].probability, 0.5);
    EXPECT_EQ(points[1].name, "task.slow");
    EXPECT_DOUBLE_EQ(points[1].probability, 0.25);
    EXPECT_EQ(points[1].delay_ms, 20u);

    // p=1 and p=0 are exact, not approximate.
    ASSERT_TRUE(FaultRegistry::configure("always:1.0,never:0.0", 7,
                                         error))
        << error;
    EXPECT_EQ(fireCount("always", 50), 50u);
    EXPECT_EQ(fireCount("never", 50), 0u);
    EXPECT_EQ(fireCount("unconfigured", 50), 0u);
    FaultRegistry::reset();
}

TEST(FaultRegistry, SameSeedSameSchedule)
{
    std::string error;
    ASSERT_TRUE(FaultRegistry::configure("coin:0.5", 1234, error));
    std::vector<bool> first;
    for (unsigned i = 0; i < 64; ++i)
        first.push_back(S3D_FAULT_POINT("coin"));

    // Reconfiguring with the same seed replays the same schedule.
    ASSERT_TRUE(FaultRegistry::configure("coin:0.5", 1234, error));
    for (unsigned i = 0; i < 64; ++i)
        EXPECT_EQ(bool(S3D_FAULT_POINT("coin")), bool(first[i]))
            << "decision " << i;

    auto points = FaultRegistry::snapshot();
    ASSERT_EQ(points.size(), 1u);
    EXPECT_EQ(points[0].checks, 64u);

    // A different seed gives a different schedule (with 2^-64 odds
    // of a false failure over 64 fair coin flips).
    ASSERT_TRUE(FaultRegistry::configure("coin:0.5", 999, error));
    std::vector<bool> reseeded;
    for (unsigned i = 0; i < 64; ++i)
        reseeded.push_back(S3D_FAULT_POINT("coin"));
    EXPECT_NE(first, reseeded);
    FaultRegistry::reset();
}

TEST(FaultRegistry, DelayPointsDrawTheirConfiguredLatency)
{
    std::string error;
    ASSERT_TRUE(FaultRegistry::configure("lag:1.0:35", 5, error));
    EXPECT_EQ(S3D_FAULT_DELAY("lag"), 35u);
    ASSERT_TRUE(FaultRegistry::configure("lag:0.0:35", 5, error));
    EXPECT_EQ(S3D_FAULT_DELAY("lag"), 0u);
    FaultRegistry::reset();
}

TEST(FaultRegistry, JsonFileSpecConfiguresPoints)
{
    std::string path = ::testing::TempDir() + "s3d_faults.json";
    {
        std::ofstream os(path);
        os << "{\"seed\": 11, \"points\": {"
              "\"disk.read\": 0.125, "
              "\"task.slow\": {\"p\": 1.0, \"delay_ms\": 5}}}";
    }
    std::string error;
    ASSERT_TRUE(FaultRegistry::configure("@" + path, 0, error))
        << error;
    auto points = FaultRegistry::snapshot();
    ASSERT_EQ(points.size(), 2u);
    EXPECT_DOUBLE_EQ(points[0].probability, 0.125);
    EXPECT_EQ(points[1].delay_ms, 5u);
    EXPECT_EQ(S3D_FAULT_DELAY("task.slow"), 5u);
    FaultRegistry::reset();
    std::remove(path.c_str());
}

TEST(FaultRegistry, MalformedSpecsRejectedConfigKept)
{
    std::string error;
    ASSERT_TRUE(FaultRegistry::configure("keep.me:1.0", 1, error));

    for (const char *bad :
         {"noprob", "p:notanumber", "p:2.0", "p:-0.5", "p:0.5:junk",
          ":0.5", "@/nonexistent-s3d/faults.json"}) {
        error.clear();
        EXPECT_FALSE(FaultRegistry::configure(bad, 1, error)) << bad;
        EXPECT_FALSE(error.empty()) << bad;
    }
    // The previous good configuration survived every rejection.
    EXPECT_TRUE(FaultRegistry::enabled());
    EXPECT_EQ(fireCount("keep.me", 3), 3u);
    FaultRegistry::reset();
}

// ---------------------------------------------------------------------
// cooperative cancellation
// ---------------------------------------------------------------------

TEST(CancelToken, CancelFlagStopsWork)
{
    CancelToken token;
    EXPECT_FALSE(token.cancelled());
    EXPECT_FALSE(token.shouldStop());
    EXPECT_FALSE(token.hasDeadline());
    token.throwIfStopped("loop");   // no-op while running

    token.cancel();
    EXPECT_TRUE(token.cancelled());
    EXPECT_TRUE(token.shouldStop());
    EXPECT_THROW(token.throwIfStopped("loop"), CancelledError);
}

TEST(CancelToken, DeadlineExpiryStopsWork)
{
    CancelToken expired(1);
    ASSERT_TRUE(expired.hasDeadline());
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    EXPECT_TRUE(expired.shouldStop());
    EXPECT_FALSE(expired.cancelled());   // timed out, not cancelled
    EXPECT_THROW(expired.throwIfStopped("solve"), CancelledError);

    CancelToken generous(60000);
    EXPECT_TRUE(generous.hasDeadline());
    EXPECT_FALSE(generous.shouldStop());
}
