# Runs lint3d over the fixture corpus and diffs the JSON report
# against the blessed golden. Invoked by ctest (see
# tests/CMakeLists.txt) as:
#
#   cmake -DLINT3D=<exe> -DFIXTURES=<dir> -DOUT=<file> -P run_lint3d_fixtures.cmake
#
# To re-bless after intentionally changing a rule or fixture:
#
#   build/tools/lint3d/lint3d --root tests/lint3d_fixtures \
#       --config tests/lint3d_fixtures/lint3d.toml --json \
#       > tests/lint3d_fixtures/golden_findings.json

foreach(var LINT3D FIXTURES OUT)
    if(NOT DEFINED ${var})
        message(FATAL_ERROR "run_lint3d_fixtures.cmake: -D${var}=... is required")
    endif()
endforeach()

set(golden "${FIXTURES}/golden_findings.json")
if(NOT EXISTS "${golden}")
    message(FATAL_ERROR "missing golden file '${golden}'")
endif()

# The fixtures intentionally contain findings, so the expected exit
# status is 1 (the CI-gate signal); anything else is a lint3d failure.
execute_process(
    COMMAND "${LINT3D}" --root "${FIXTURES}"
            --config "${FIXTURES}/lint3d.toml" --json
    OUTPUT_FILE "${OUT}"
    RESULT_VARIABLE rc)
if(NOT rc EQUAL 1)
    message(FATAL_ERROR
        "lint3d exited with ${rc} on the fixture corpus (expected 1: "
        "fixtures contain deliberate findings)")
endif()

execute_process(
    COMMAND "${CMAKE_COMMAND}" -E compare_files "${OUT}" "${golden}"
    RESULT_VARIABLE diff)
if(NOT diff EQUAL 0)
    execute_process(COMMAND "${CMAKE_COMMAND}" -E echo
        "--- actual (${OUT}) ---")
    execute_process(COMMAND "${CMAKE_COMMAND}" -E cat "${OUT}")
    message(FATAL_ERROR
        "lint3d fixture findings diverged from ${golden}; if the "
        "change is intentional, re-bless per the header comment")
endif()
