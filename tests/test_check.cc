/**
 * @file
 * Tests for the S3D_ASSERT / S3D_DCHECK / S3D_BOUNDS contract layer
 * (common/check.hh). Built in every preset: the S3D_CHECKED blocks
 * verify that debug contracts fire under the `checked` preset, the
 * #else blocks verify they compile out — including that condition
 * and message operands are never evaluated — in Release.
 */

#include <gtest/gtest.h>

#include <cstddef>
#include <string>
#include <vector>

#include "common/check.hh"

using namespace stack3d;

namespace {

/** Counts evaluations so tests can prove (non-)evaluation. */
int
countingTrue(int &counter)
{
    ++counter;
    return 1;
}

} // anonymous namespace

TEST(Check, AssertPassesSilently)
{
    int evals = 0;
    S3D_ASSERT(countingTrue(evals) == 1) << "never shown";
    EXPECT_EQ(evals, 1);
}

TEST(CheckDeathTest, AssertFiresWithMessage)
{
    int x = 3;
    EXPECT_DEATH(S3D_ASSERT(x == 4) << "x=" << x,
                 "S3D_ASSERT failed: 'x == 4'; x=3");
}

TEST(CheckDeathTest, AssertFiresWithoutMessage)
{
    EXPECT_DEATH(S3D_ASSERT(false), "S3D_ASSERT failed: 'false'");
}

TEST(Check, MessageOperandsNotEvaluatedOnSuccess)
{
    int evals = 0;
    S3D_ASSERT(true) << countingTrue(evals);
    EXPECT_EQ(evals, 0);
}

#ifdef S3D_CHECKED

TEST(CheckDeathTest, DcheckFiresWhenChecked)
{
    std::size_t n = 2;
    EXPECT_DEATH(S3D_DCHECK(n > 5) << "n=" << n,
                 "S3D_DCHECK failed: 'n > 5'; n=2");
}

TEST(Check, DcheckPassesSilently)
{
    int evals = 0;
    S3D_DCHECK(countingTrue(evals) == 1);
    EXPECT_EQ(evals, 1);
}

TEST(CheckDeathTest, BoundsFiresWhenChecked)
{
    std::vector<int> v{1, 2, 3};
    EXPECT_DEATH((void)v[S3D_BOUNDS(7, v.size())],
                 "S3D_BOUNDS failed: index 7 >= size 3");
}

TEST(Check, BoundsReturnsIndexInRange)
{
    std::vector<int> v{10, 20, 30};
    EXPECT_EQ(v[S3D_BOUNDS(2, v.size())], 30);
}

#else // !S3D_CHECKED

TEST(Check, DcheckCompilesOutCondition)
{
    int evals = 0;
    // The condition must not be evaluated at all in Release.
    S3D_DCHECK(countingTrue(evals) == 0) << countingTrue(evals);
    EXPECT_EQ(evals, 0);
}

TEST(Check, DcheckFalseIsHarmlessInRelease)
{
    S3D_DCHECK(false) << "never evaluated, never shown";
    SUCCEED();
}

TEST(Check, BoundsPassesThroughInRelease)
{
    // Out-of-range index: Release S3D_BOUNDS is the identity, so the
    // value comes back untouched (and must not be used to subscript).
    EXPECT_EQ(S3D_BOUNDS(7, std::size_t(3)), 7);

    std::vector<int> v{10, 20, 30};
    EXPECT_EQ(v[S3D_BOUNDS(1, v.size())], 20);
}

#endif // S3D_CHECKED
