# Byte-stability gate: the full-repo JSON report must be identical
# across thread counts and across repeated runs (the merge step
# orders pass-1 results by path, and pass 2 is pure computation over
# them — this test is what keeps that true).
#
#   cmake -DLINT3D=<exe> -DROOT=<repo> -DWORK=<dir> -P run_lint3d_determinism.cmake

foreach(var LINT3D ROOT WORK)
    if(NOT DEFINED ${var})
        message(FATAL_ERROR "run_lint3d_determinism.cmake: -D${var}=... is required")
    endif()
endforeach()

file(MAKE_DIRECTORY "${WORK}")

set(reference "")
foreach(run "t1_a" "t1_b" "t2_a" "t5_a" "t2_b")
    string(REGEX REPLACE "^t([0-9]+)_.*" "\\1" threads "${run}")
    set(out "${WORK}/lint3d_det_${run}.json")
    execute_process(
        COMMAND "${LINT3D}" --root "${ROOT}"
                --config "${ROOT}/.lint3d.toml"
                --threads "${threads}" --json
        OUTPUT_FILE "${out}"
        ERROR_QUIET
        RESULT_VARIABLE rc)
    if(NOT rc EQUAL 0)
        message(FATAL_ERROR
            "lint3d exited with ${rc} on the repo (run ${run}); the "
            "tree must be lint-clean for the determinism gate")
    endif()
    if(reference STREQUAL "")
        set(reference "${out}")
        continue()
    endif()
    execute_process(
        COMMAND "${CMAKE_COMMAND}" -E compare_files
                "${reference}" "${out}"
        RESULT_VARIABLE diff)
    if(NOT diff EQUAL 0)
        message(FATAL_ERROR
            "lint3d report for run '${run}' differs from '${reference}': "
            "output is not byte-stable across thread counts")
    endif()
endforeach()
