/**
 * @file
 * Tests for the Pentium 4-class pipeline model: configuration,
 * dataflow/structural/control timing behaviours, per-path
 * monotonicity, and the benchmark-suite driver.
 */

#include <gtest/gtest.h>

#include "cpu/config.hh"
#include "cpu/pipeline.hh"
#include "cpu/suite.hh"

using namespace stack3d;
using namespace stack3d::cpu;
using workloads::CpuUop;
using workloads::MemLevel;
using workloads::UopClass;

// ---------------------------------------------------------------------
// configuration
// ---------------------------------------------------------------------

TEST(Config, MispredictPenaltyExceeds30)
{
    // "a branch miss-prediction penalty of more than 30 clock cycles"
    EXPECT_GT(PipelineConfig::planar().mispredictPenalty(), 30u);
}

TEST(Config, Stacked3dReducesEveryPath)
{
    PipelineConfig planar = PipelineConfig::planar();
    PipelineConfig s3d = PipelineConfig::stacked3d();
    EXPECT_LT(s3d.frontend_stages, planar.frontend_stages);
    EXPECT_LT(s3d.trace_cache_stages, planar.trace_cache_stages);
    EXPECT_LT(s3d.rename_stages, planar.rename_stages);
    EXPECT_LT(s3d.fp_extra_latency, planar.fp_extra_latency);
    EXPECT_LT(s3d.int_rf_stages, planar.int_rf_stages);
    EXPECT_LT(s3d.dcache_stages, planar.dcache_stages);
    EXPECT_LT(s3d.instr_loop_stages, planar.instr_loop_stages);
    EXPECT_LT(s3d.retire_dealloc_stages,
              planar.retire_dealloc_stages);
    EXPECT_LT(s3d.fp_load_extra, planar.fp_load_extra);
    EXPECT_LT(s3d.store_lifetime, planar.store_lifetime);
}

TEST(Config, Table4StagePercentages)
{
    PipelineConfig planar = PipelineConfig::planar();
    // Front-end 12.5% of 8 = 1 stage; trace cache 20% of 5 = 1;
    // rename 25% of 4 = 1; D$ 25% of 4 = 1; loop 17% of 6 = 1;
    // dealloc 20% of 5 = 1; store lifetime 30%.
    PipelineConfig c = planar;
    c.applyPathReduction(Path::FrontEnd);
    EXPECT_EQ(planar.frontend_stages - c.frontend_stages, 1u);
    c = planar;
    c.applyPathReduction(Path::StoreLifetime);
    EXPECT_NEAR(double(planar.store_lifetime - c.store_lifetime) /
                    planar.store_lifetime,
                0.30, 0.08);
}

TEST(Config, PathNamesMatchTable4Rows)
{
    EXPECT_STREQ(pathName(Path::FpLatency), "FP inst. latency");
    EXPECT_STREQ(pathName(Path::StoreLifetime), "Store lifetime");
}

// ---------------------------------------------------------------------
// pipeline timing behaviours
// ---------------------------------------------------------------------

namespace {

CpuUop
uop(UopClass cls, std::uint16_t d1 = 0, std::uint16_t d2 = 0)
{
    CpuUop u;
    u.cls = cls;
    u.src_dist[0] = d1;
    u.src_dist[1] = d2;
    return u;
}

std::vector<CpuUop>
repeat(const CpuUop &u, std::size_t n)
{
    return std::vector<CpuUop>(n, u);
}

} // anonymous namespace

TEST(Pipeline, EmptyTrace)
{
    PipelineModel model(PipelineConfig::planar());
    CpuResult res = model.run({});
    EXPECT_EQ(res.num_uops, 0u);
    EXPECT_EQ(res.cycles, 0u);
}

TEST(Pipeline, IndependentIntIpcNearFetchWidth)
{
    PipelineModel model(PipelineConfig::planar());
    CpuResult res = model.run(repeat(uop(UopClass::IntAlu), 30000));
    EXPECT_NEAR(res.ipc, 3.0, 0.1);
}

TEST(Pipeline, SerialChainBoundByLatency)
{
    // Every uop depends on the previous one: IPC -> 1/int_latency.
    PipelineModel model(PipelineConfig::planar());
    CpuResult res =
        model.run(repeat(uop(UopClass::IntAlu, 1), 20000));
    EXPECT_NEAR(res.ipc, 1.0, 0.05);
}

TEST(Pipeline, FpChainSeesExtraLatency)
{
    PipelineConfig planar = PipelineConfig::planar();
    PipelineConfig fast = planar;
    fast.applyPathReduction(Path::FpLatency);

    auto chain = repeat(uop(UopClass::FpOp, 1), 20000);
    double ipc_planar = PipelineModel(planar).run(chain).ipc;
    double ipc_fast = PipelineModel(fast).run(chain).ipc;
    // Serial FP chain: latency (4+2) vs (4+0).
    EXPECT_NEAR(ipc_planar, 1.0 / 6.0, 0.01);
    EXPECT_NEAR(ipc_fast, 1.0 / 4.0, 0.02);
}

TEST(Pipeline, LoadToUseVisibleInChains)
{
    PipelineConfig planar = PipelineConfig::planar();
    PipelineConfig fast = planar;
    fast.applyPathReduction(Path::DcacheRead);

    // load -> dependent alu -> feeding the next load's address.
    std::vector<CpuUop> uops;
    for (int i = 0; i < 10000; ++i) {
        uops.push_back(uop(UopClass::Load, i ? 1 : 0));
        uops.push_back(uop(UopClass::IntAlu, 1));
    }
    double slow_ipc = PipelineModel(planar).run(uops).ipc;
    double fast_ipc = PipelineModel(fast).run(uops).ipc;
    EXPECT_GT(fast_ipc, slow_ipc * 1.10);
}

TEST(Pipeline, MispredictsCostTheDeepPipeline)
{
    PipelineConfig cfg = PipelineConfig::planar();
    std::vector<CpuUop> clean = repeat(uop(UopClass::IntAlu), 10000);

    std::vector<CpuUop> bad = clean;
    for (std::size_t i = 99; i < bad.size(); i += 100) {
        bad[i].cls = UopClass::Branch;
        bad[i].mispredict = true;
    }
    PipelineModel model(cfg);
    Cycles c_clean = model.run(clean).cycles;
    Cycles c_bad = model.run(bad).cycles;
    // 100 mispredicts x ~(>30)-cycle penalty.
    EXPECT_GT(c_bad, c_clean + 100 * 25);
    EXPECT_EQ(model.run(bad).mispredicts, 100u);
}

TEST(Pipeline, MemoryLoadsStallChains)
{
    PipelineConfig cfg = PipelineConfig::planar();
    CpuUop mem_load = uop(UopClass::Load, 1);
    mem_load.mem_level = MemLevel::Memory;
    auto chain = repeat(mem_load, 2000);
    CpuResult res = PipelineModel(cfg).run(chain);
    // Each chained memory load costs ~dcache+memory cycles.
    EXPECT_LT(res.ipc, 0.01);
}

TEST(Pipeline, StoreBurstsStallOnStoreQueue)
{
    PipelineConfig cfg = PipelineConfig::planar();
    // Alternate big store bursts with long-latency work so the SQ
    // drains slowly.
    std::vector<CpuUop> uops;
    for (int block = 0; block < 200; ++block) {
        for (int s = 0; s < 30; ++s)
            uops.push_back(uop(UopClass::Store, 1));
        for (int a = 0; a < 30; ++a)
            uops.push_back(uop(UopClass::IntAlu, 1));
    }
    CpuResult res = PipelineModel(cfg).run(uops);
    EXPECT_GT(res.sq_stall_cycles, 0u);

    PipelineConfig fast = cfg;
    fast.applyPathReduction(Path::StoreLifetime);
    CpuResult res_fast = PipelineModel(fast).run(uops);
    EXPECT_LT(res_fast.cycles, res.cycles);
}

class PathMonotonicityTest : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(PathMonotonicityTest, ReducingAPathNeverHurts)
{
    workloads::CpuWorkloadParams params;
    params.name = "mono";
    params.frac_fp = 0.15;
    params.frac_fp_load = 0.05;
    params.fp_chain = 0.4;
    auto uops = workloads::generateCpuTrace(params, 60000, 5);

    PipelineConfig planar = PipelineConfig::planar();
    PipelineConfig cfg = planar;
    cfg.applyPathReduction(Path(GetParam()));

    Cycles before = PipelineModel(planar).run(uops).cycles;
    Cycles after = PipelineModel(cfg).run(uops).cycles;
    EXPECT_LE(after, before + before / 200)
        << "path " << pathName(Path(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(AllPaths, PathMonotonicityTest,
                         ::testing::Range(0u, kNumPaths));

TEST(Pipeline, Deterministic)
{
    workloads::CpuWorkloadParams params;
    params.name = "det";
    auto uops = workloads::generateCpuTrace(params, 30000, 9);
    PipelineModel model(PipelineConfig::planar());
    EXPECT_EQ(model.run(uops).cycles, model.run(uops).cycles);
}

// ---------------------------------------------------------------------
// suite
// ---------------------------------------------------------------------

TEST(Suite, RunsAllClasses)
{
    SuiteOptions opt;
    opt.uops_per_trace = 5000;
    TraceSuite suite(opt);
    EXPECT_GE(suite.numTraces(), 8u);

    SuiteResult res = suite.run(PipelineConfig::planar());
    EXPECT_GT(res.geomean_ipc, 0.1);
    EXPECT_LT(res.geomean_ipc, 3.0);
    EXPECT_EQ(res.class_ipc.size(), 8u);
}

TEST(Suite, StackedBeatsPlanar)
{
    SuiteOptions opt;
    opt.uops_per_trace = 10000;
    TraceSuite suite(opt);
    double speedup = suite.speedupOver(PipelineConfig::planar(),
                                       PipelineConfig::stacked3d());
    EXPECT_GT(speedup, 1.05);
    EXPECT_LT(speedup, 1.30);
}

TEST(Suite, Table4ShapeMatchesPaper)
{
    SuiteOptions opt;
    opt.uops_per_trace = 20000;
    Table4Result t4 = computeTable4(opt);
    ASSERT_EQ(t4.rows.size(), kNumPaths);

    // Total gain lands near the paper's ~15%.
    EXPECT_GT(t4.total_perf_gain_pct, 9.0);
    EXPECT_LT(t4.total_perf_gain_pct, 20.0);

    auto gain = [&](Path p) {
        for (const auto &row : t4.rows)
            if (row.path == p)
                return row.perf_gain_pct;
        return -1.0;
    };
    // FP latency is the single largest contributor; store lifetime
    // and FP load are the next tier (the paper's ordering).
    EXPECT_GT(gain(Path::FpLatency), gain(Path::FrontEnd));
    EXPECT_GT(gain(Path::FpLatency), gain(Path::InstrLoop));
    EXPECT_GT(gain(Path::StoreLifetime), gain(Path::RenameAlloc));
    EXPECT_GT(gain(Path::FpLoad), gain(Path::FrontEnd));
    // Every path helps at least a little.
    for (const auto &row : t4.rows)
        EXPECT_GT(row.perf_gain_pct, 0.0)
            << pathName(row.path);
}
