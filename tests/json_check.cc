/**
 * @file
 * Validation helper for bench output files, driven from CTest:
 *
 *   json_check chrome <trace.json>
 *       The file must be well-formed JSON with a "traceEvents" array
 *       whose timestamps are monotonic per tid and whose B/E span
 *       events balance — i.e. a trace chrome://tracing will load.
 *
 *   json_check fields <result.json> <dotted.path>...
 *       The file must be well-formed JSON containing every listed
 *       dotted path; a path resolving to an empty object or empty
 *       array also fails (a present-but-hollow "counters" member is
 *       a regression, not a pass).
 *
 *   json_check eq <result.json> <dotted.path> <value>
 *       The path must exist and equal <value>: numerically for
 *       numbers, verbatim for strings, "true"/"false" for booleans.
 *       Used by the serve smoke test to assert counter values
 *       ("the duplicate request was a cache hit").
 *
 *   json_check same <a.json> <b.json> <dotted.prefix>
 *       Every scalar leaf under <dotted.prefix> must exist in both
 *       files with equal values (and no leaf may exist in only one).
 *       A prefix matching nothing fails — comparing empty sets would
 *       fake a pass. Used by the chaos smoke test to assert that two
 *       same-seed fault runs produced identical serve.fault.* totals.
 *
 * Exits 0 on success, 1 with a diagnostic on the first violation.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>

#include "common/json_parse.hh"

using namespace stack3d;

namespace {

bool
readFile(const char *path, std::string &out)
{
    std::ifstream f(path, std::ios::binary);
    if (!f)
        return false;
    std::ostringstream ss;
    ss << f.rdbuf();
    out = ss.str();
    return true;
}

int
fail(const std::string &message)
{
    std::fprintf(stderr, "json_check: %s\n", message.c_str());
    return 1;
}

int
checkChrome(const JsonValue &root)
{
    const JsonValue *events = root.find("traceEvents");
    if (!events || !events->isArray())
        return fail("no traceEvents array");
    if (events->array.empty())
        return fail("traceEvents is empty");

    std::map<double, double> last_ts;
    std::map<double, int> depth;
    std::size_t n = 0;
    for (const JsonValue &ev : events->array) {
        const JsonValue *ph = ev.find("ph");
        const JsonValue *ts = ev.find("ts");
        const JsonValue *tid = ev.find("tid");
        if (!ph || !ph->isString() || !ts || !ts->isNumber() ||
            !tid || !tid->isNumber()) {
            return fail("event " + std::to_string(n) +
                        " lacks ph/ts/tid");
        }
        auto it = last_ts.find(tid->number);
        if (it != last_ts.end() && ts->number < it->second) {
            return fail("event " + std::to_string(n) +
                        ": ts went backwards on its tid");
        }
        last_ts[tid->number] = ts->number;
        if (ph->string == "B") {
            ++depth[tid->number];
        } else if (ph->string == "E") {
            if (--depth[tid->number] < 0) {
                return fail("event " + std::to_string(n) +
                            ": E without matching B");
            }
        }
        ++n;
    }
    for (const auto &[tid, d] : depth) {
        if (d != 0) {
            return fail("unbalanced spans on tid " +
                        std::to_string(tid));
        }
    }
    std::printf("json_check: %zu events OK\n", n);
    return 0;
}

int
checkFields(const JsonValue &root, int argc, char **argv)
{
    for (int i = 3; i < argc; ++i) {
        const JsonValue *v = root.findPath(argv[i]);
        if (!v)
            return fail(std::string("missing field: ") + argv[i]);
        if (v->isObject() && v->object.empty())
            return fail(std::string("empty object: ") + argv[i]);
        if (v->isArray() && v->array.empty())
            return fail(std::string("empty array: ") + argv[i]);
    }
    std::printf("json_check: %d field(s) OK\n", argc - 3);
    return 0;
}

int
checkEq(const JsonValue &root, const char *path, const char *expected)
{
    const JsonValue *v = root.findPath(path);
    if (!v)
        return fail(std::string("missing field: ") + path);
    if (v->isNumber()) {
        char *end = nullptr;
        double want = std::strtod(expected, &end);
        if (!end || *end != '\0')
            return fail(std::string("not a number: ") + expected);
        if (v->number != want) {
            return fail(std::string(path) + " is " + v->string +
                        ", expected " + expected);
        }
    } else if (v->isString()) {
        if (v->string != expected) {
            return fail(std::string(path) + " is \"" + v->string +
                        "\", expected \"" + expected + "\"");
        }
    } else if (v->isBool()) {
        const char *actual = v->boolean ? "true" : "false";
        if (std::strcmp(actual, expected) != 0) {
            return fail(std::string(path) + " is " + actual +
                        ", expected " + expected);
        }
    } else {
        return fail(std::string(path) +
                    " is not a comparable scalar");
    }
    std::printf("json_check: %s == %s OK\n", path, expected);
    return 0;
}

/** Flatten every scalar leaf into dotted-path → raw-token form. */
void
collectLeaves(const JsonValue &v, const std::string &path,
              std::map<std::string, std::string> &out)
{
    if (v.isObject()) {
        for (const auto &[key, child] : v.object) {
            collectLeaves(child,
                          path.empty() ? key : path + "." + key, out);
        }
    } else if (v.isArray()) {
        for (std::size_t i = 0; i < v.array.size(); ++i) {
            collectLeaves(v.array[i],
                          path + "[" + std::to_string(i) + "]", out);
        }
    } else if (v.isNumber() || v.isString()) {
        out[path] = v.string;
    } else if (v.isBool()) {
        out[path] = v.boolean ? "true" : "false";
    }
}

bool
hasPrefix(const std::string &path, const std::string &prefix)
{
    // "serve.fault" matches "serve.fault.x" but not "serve.faulty".
    return path.size() > prefix.size() &&
           path.compare(0, prefix.size(), prefix) == 0 &&
           (path[prefix.size()] == '.' ||
            path[prefix.size()] == '[');
}

int
checkSame(const JsonValue &a, const char *a_name, const JsonValue &b,
          const char *b_name, const std::string &prefix)
{
    std::map<std::string, std::string> left, right;
    collectLeaves(a, "", left);
    collectLeaves(b, "", right);

    std::size_t compared = 0;
    for (const auto &[path, value] : left) {
        if (!hasPrefix(path, prefix) && path != prefix)
            continue;
        auto it = right.find(path);
        if (it == right.end()) {
            return fail(path + " present in " + a_name +
                        " but missing from " + b_name);
        }
        if (it->second != value) {
            return fail(path + " differs: " + value + " in " +
                        a_name + " vs " + it->second + " in " +
                        b_name);
        }
        ++compared;
    }
    for (const auto &[path, value] : right) {
        if ((hasPrefix(path, prefix) || path == prefix) &&
            left.find(path) == left.end()) {
            return fail(path + " present in " + b_name +
                        " but missing from " + a_name);
        }
    }
    if (compared == 0)
        return fail("no leaves under prefix " + prefix +
                    " — nothing was compared");
    std::printf("json_check: %zu leaf value(s) under %s identical\n",
                compared, prefix.c_str());
    return 0;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    if (argc < 3) {
        std::fprintf(stderr,
                     "usage:\n"
                     "  json_check chrome <trace.json>\n"
                     "  json_check fields <result.json> <path>...\n"
                     "  json_check eq <result.json> <path> <value>\n"
                     "  json_check same <a.json> <b.json> "
                     "<prefix>\n");
        return 2;
    }

    std::string text;
    if (!readFile(argv[2], text))
        return fail(std::string("cannot read ") + argv[2]);
    JsonValue root;
    std::string error;
    if (!parseJson(text, root, error))
        return fail(std::string(argv[2]) + ": " + error);

    if (std::strcmp(argv[1], "same") == 0) {
        if (argc != 5)
            return fail("same needs <a.json> <b.json> <prefix>");
        std::string other_text;
        if (!readFile(argv[3], other_text))
            return fail(std::string("cannot read ") + argv[3]);
        JsonValue other;
        if (!parseJson(other_text, other, error))
            return fail(std::string(argv[3]) + ": " + error);
        return checkSame(root, argv[2], other, argv[3], argv[4]);
    }
    if (std::strcmp(argv[1], "chrome") == 0)
        return checkChrome(root);
    if (std::strcmp(argv[1], "fields") == 0)
        return checkFields(root, argc, argv);
    if (std::strcmp(argv[1], "eq") == 0) {
        if (argc != 5)
            return fail("eq needs <file> <path> <value>");
        return checkEq(root, argv[3], argv[4]);
    }
    return fail(std::string("unknown mode: ") + argv[1]);
}
