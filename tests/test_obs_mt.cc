/**
 * @file
 * Concurrency tests for the observability layer (run under the tsan
 * preset): spans recorded from pool worker threads, concurrent warn()
 * capture through StudyTracker, and the pool's own counter snapshot.
 */

#include <gtest/gtest.h>

#include <map>
#include <sstream>
#include <string>

#include "common/json_parse.hh"
#include "common/logging.hh"
#include "core/run_options.hh"
#include "exec/future_set.hh"
#include "exec/pool.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"

using namespace stack3d;

namespace {

constexpr std::size_t kTasks = 64;

} // anonymous namespace

TEST(ObsMt, ConcurrentSpansFromPoolThreads)
{
    obs::TraceCollector collector;
    collector.install();
    {
        exec::ThreadPool pool(4);
        exec::parallelFor(pool, kTasks, [](std::size_t i) {
            obs::Span span("mt.task", "test");
            obs::instant("mt.tick", "test");
            (void)i;
        });
    }
    collector.uninstall();
    // One B/E pair plus one instant per task (the pool adds its own
    // worker spans on top, so the total is a floor, not an equality).
    EXPECT_GE(collector.eventCount(), kTasks * 3);

    // The flushed trace must stay well-formed: per tid, timestamps
    // non-decreasing and B/E balanced, with every task event present.
    std::ostringstream os;
    collector.writeChromeJson(os);
    JsonValue root;
    std::string error;
    ASSERT_TRUE(parseJson(os.str(), root, error)) << error;
    const JsonValue *events = root.find("traceEvents");
    ASSERT_NE(events, nullptr);
    std::size_t task_spans = 0, task_instants = 0;
    std::map<double, double> last_ts;
    std::map<double, int> depth;
    for (const JsonValue &ev : events->array) {
        const JsonValue *cat = ev.find("cat");
        const JsonValue *name = ev.find("name");
        if (cat && cat->string == "test" && name) {
            if (name->string == "mt.task")
                ++task_spans;
            else if (name->string == "mt.tick")
                ++task_instants;
        }
        double tid = ev.find("tid")->number;
        double ts = ev.find("ts")->number;
        auto it = last_ts.find(tid);
        if (it != last_ts.end()) {
            EXPECT_GE(ts, it->second);
        }
        last_ts[tid] = ts;
        const std::string &ph = ev.find("ph")->string;
        if (ph == "B")
            ++depth[tid];
        else if (ph == "E")
            --depth[tid];
        EXPECT_GE(depth[tid], 0);
    }
    for (const auto &[tid, d] : depth)
        EXPECT_EQ(d, 0) << "unbalanced spans on tid " << tid;
    // Every task's span 'B' edge and instant made it out intact.
    EXPECT_EQ(task_spans, kTasks);
    EXPECT_EQ(task_instants, kTasks);
}

TEST(ObsMt, ChunkBoundaryCrossingLosesNothing)
{
    // More events than one EventChunk holds, all from one thread, so
    // the buffer has to chain chunks mid-run.
    constexpr std::size_t kSpans = 3000;
    obs::TraceCollector collector;
    collector.install();
    for (std::size_t i = 0; i < kSpans; ++i)
        obs::Span span("chunk.span", "test");
    collector.uninstall();
    EXPECT_EQ(collector.eventCount(), kSpans * 2);
}

TEST(ObsMt, StudyTrackerCapturesConcurrentWarnings)
{
    detail::setQuiet(true);   // keep the warnings off the test output
    core::RunOptions opts;
    opts.threads = 4;
    core::StudyTracker tracker("mt", kTasks, opts);
    {
        exec::ThreadPool pool(4);
        exec::parallelFor(pool, kTasks, [&](std::size_t i) {
            tracker.runCell(i, "cell" + std::to_string(i), [i] {
                warn("mt warning ", i);
            });
        });
    }
    core::StudyMeta meta = tracker.finish();
    detail::setQuiet(false);

    EXPECT_EQ(meta.warnings.size(), kTasks);
    EXPECT_EQ(meta.cells.size(), kTasks);
    for (std::size_t i = 0; i < meta.cells.size(); ++i) {
        EXPECT_EQ(meta.cells[i].index, i);
        EXPECT_EQ(meta.cells[i].label, "cell" + std::to_string(i));
    }
}

TEST(ObsMt, PoolCountersAccountForAllTasks)
{
    obs::CounterSet c;
    {
        exec::ThreadPool pool(4);
        exec::parallelFor(pool, kTasks, [](std::size_t) {});
        pool.appendCounters(c, "pool.");
    }
    EXPECT_EQ(c.value("pool.threads"), 4.0);
    // Every task ran exactly once, inline or on a worker.
    EXPECT_EQ(c.value("pool.executed") + c.value("pool.inline_executed"),
              double(kTasks));
}
