/**
 * @file
 * Tests for the observability layer: span tracing and the Chrome
 * trace-event output, CounterSet and the JSON serializers, the run
 * provenance manifest, the JSON parser they are all validated with,
 * and the console progress-sink line format.
 */

#include <gtest/gtest.h>

#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "common/json.hh"
#include "common/json_parse.hh"
#include "common/logging.hh"
#include "common/stats.hh"
#include "core/run_options.hh"
#include "mem/engine.hh"
#include "obs/metrics.hh"
#include "obs/provenance.hh"
#include "obs/trace.hh"
#include "thermal/solver.hh"
#include "thermal/stacks.hh"
#include "workloads/registry.hh"

using namespace stack3d;

namespace {

JsonValue
parseOrDie(const std::string &text)
{
    JsonValue v;
    std::string error;
    EXPECT_TRUE(parseJson(text, v, error)) << error;
    return v;
}

/**
 * Chrome-trace well-formedness: per tid, timestamps must be
 * non-decreasing in array order and B/E events must balance.
 */
void
checkChromeTrace(const JsonValue &root, std::size_t expected_events)
{
    const JsonValue *events = root.find("traceEvents");
    ASSERT_NE(events, nullptr);
    ASSERT_TRUE(events->isArray());
    EXPECT_EQ(events->array.size(), expected_events);

    std::map<double, double> last_ts;
    std::map<double, int> depth;
    for (const JsonValue &ev : events->array) {
        const JsonValue *ph = ev.find("ph");
        const JsonValue *ts = ev.find("ts");
        const JsonValue *tid = ev.find("tid");
        ASSERT_NE(ph, nullptr);
        ASSERT_NE(ts, nullptr);
        ASSERT_NE(tid, nullptr);
        auto it = last_ts.find(tid->number);
        if (it != last_ts.end()) {
            EXPECT_GE(ts->number, it->second) << "ts went backwards";
        }
        last_ts[tid->number] = ts->number;
        if (ph->string == "B") {
            ++depth[tid->number];
        } else if (ph->string == "E") {
            --depth[tid->number];
            EXPECT_GE(depth[tid->number], 0) << "E without B";
        }
    }
    for (const auto &[tid, d] : depth)
        EXPECT_EQ(d, 0) << "unbalanced spans on tid " << tid;
}

} // anonymous namespace

// ---------------------------------------------------------------------
// tracing
// ---------------------------------------------------------------------

TEST(ObsTrace, SpansAreNoOpsWithoutCollector)
{
    ASSERT_FALSE(obs::tracingActive());
    {
        obs::Span span("outer", "test");
        obs::Span inner(std::string("inner"), "test");
        obs::instant("marker", "test");
    }
    // Nothing to flush and nothing crashed: a collector installed
    // afterwards must start empty.
    obs::TraceCollector collector;
    collector.install();
    collector.uninstall();
    EXPECT_EQ(collector.eventCount(), 0u);
}

TEST(ObsTrace, RecordsMatchedSpansAndInstants)
{
    obs::TraceCollector collector;
    collector.install();
    EXPECT_TRUE(obs::tracingActive());
    {
        obs::Span outer("outer", "test");
        {
            obs::Span inner(std::string("dynamic-label"), "test");
            obs::instant("tick", "test");
        }
    }
    collector.uninstall();
    EXPECT_FALSE(obs::tracingActive());
    // Two B/E pairs plus one instant.
    EXPECT_EQ(collector.eventCount(), 5u);

    std::ostringstream os;
    collector.writeChromeJson(os);
    JsonValue root = parseOrDie(os.str());
    checkChromeTrace(root, 5);

    // The dynamic label made it into the output.
    bool found = false;
    for (const JsonValue &ev : root.find("traceEvents")->array) {
        const JsonValue *name = ev.find("name");
        if (name && name->string == "dynamic-label")
            found = true;
    }
    EXPECT_TRUE(found);
}

TEST(ObsTrace, SpansOutsideInstallWindowAreDropped)
{
    obs::TraceCollector collector;
    { obs::Span before("before", "test"); }
    collector.install();
    { obs::Span during("during", "test"); }
    collector.uninstall();
    { obs::Span after("after", "test"); }
    EXPECT_EQ(collector.eventCount(), 2u);
}

TEST(ObsTrace, StudyTrackerCellsEmitSpans)
{
    obs::TraceCollector collector;
    collector.install();
    core::RunOptions opts;
    core::StudyTracker tracker("unit", 1, opts);
    tracker.runCell(0, "cell0", [] {});
    core::StudyMeta meta = tracker.finish();
    EXPECT_EQ(meta.cells.size(), 1u);
    collector.uninstall();
    EXPECT_EQ(collector.eventCount(), 2u);

    std::ostringstream os;
    collector.writeChromeJson(os);
    EXPECT_NE(os.str().find("unit/cell0"), std::string::npos);
}

// ---------------------------------------------------------------------
// counters
// ---------------------------------------------------------------------

TEST(ObsCounters, SetAddAndLookup)
{
    obs::CounterSet c;
    EXPECT_TRUE(c.empty());
    c.set("a", 1.0);
    c.add("a", 2.0);
    c.add("b", 5.0);   // created at zero
    c.set("a", 10.0);  // overwrite
    EXPECT_EQ(c.value("a"), 10.0);
    EXPECT_EQ(c.value("b"), 5.0);
    EXPECT_EQ(c.value("missing", -1.0), -1.0);
    EXPECT_TRUE(c.has("a"));
    EXPECT_FALSE(c.has("missing"));
    EXPECT_EQ(c.size(), 2u);
}

TEST(ObsCounters, InsertionOrderIsPreserved)
{
    obs::CounterSet c;
    c.set("zebra", 1.0);
    c.set("alpha", 2.0);
    c.set("mid", 3.0);
    ASSERT_EQ(c.scalars().size(), 3u);
    EXPECT_EQ(c.scalars()[0].first, "zebra");
    EXPECT_EQ(c.scalars()[1].first, "alpha");
    EXPECT_EQ(c.scalars()[2].first, "mid");
}

TEST(ObsCounters, AccumulateSumsScalarsAndKeepsSeries)
{
    obs::CounterSet a, b;
    a.set("hits", 10.0);
    a.setSeries("curve", {1.0, 2.0});
    b.set("hits", 5.0);
    b.set("misses", 3.0);
    b.setSeries("curve", {9.0});
    b.setSeries("other", {7.0});
    a.accumulate(b);
    EXPECT_EQ(a.value("hits"), 15.0);
    EXPECT_EQ(a.value("misses"), 3.0);
    ASSERT_EQ(a.series().size(), 2u);
    // Present series keeps its values; absent series is copied.
    EXPECT_EQ(a.series()[0].second, (std::vector<double>{1.0, 2.0}));
    EXPECT_EQ(a.series()[1].first, "other");
}

TEST(ObsCounters, MergePrefixed)
{
    obs::CounterSet src, dst;
    src.set("hits", 4.0);
    src.setSeries("curve", {1.0});
    dst.mergePrefixed(src, "l2.");
    EXPECT_EQ(dst.value("l2.hits"), 4.0);
    EXPECT_TRUE(dst.has("l2.curve"));
}

TEST(ObsCounters, JsonEmitsScalarsAndDownsampledSeries)
{
    obs::CounterSet c;
    c.set("x", 1.5);
    std::vector<double> long_series(1000);
    for (std::size_t i = 0; i < long_series.size(); ++i)
        long_series[i] = double(i);
    c.setSeries("curve", long_series);

    std::ostringstream os;
    JsonWriter w(os);
    obs::writeCountersJson(w, c, 256);
    JsonValue root = parseOrDie(os.str());

    EXPECT_EQ(root.find("x")->number, 1.5);
    const JsonValue *curve = root.find("curve");
    ASSERT_NE(curve, nullptr);
    ASSERT_TRUE(curve->isArray());
    EXPECT_LE(curve->array.size(), 256u);
    // First and last points survive downsampling.
    EXPECT_EQ(curve->array.front().number, 0.0);
    EXPECT_EQ(curve->array.back().number, 999.0);
}

TEST(ObsCounters, StatsJsonRoundTrip)
{
    stats::StatGroup root("hier");
    stats::Scalar reads(&root, "reads", "total reads");
    reads = 42.0;
    stats::Average lat(&root, "latency", "mean latency");
    lat.sample(10.0);
    lat.sample(20.0);
    stats::StatGroup child("l1", &root);
    stats::Scalar hits(&child, "hits", "l1 hits");
    hits = 7.0;

    std::ostringstream os;
    JsonWriter w(os);
    obs::writeStatsJson(w, root);
    JsonValue parsed = parseOrDie(os.str());

    EXPECT_EQ(parsed.find("name")->string, "hier");
    EXPECT_EQ(parsed.findPath("stats.reads.value")->number, 42.0);
    EXPECT_EQ(parsed.findPath("stats.latency.mean")->number, 15.0);
    const JsonValue *children = parsed.find("children");
    ASSERT_NE(children, nullptr);
    ASSERT_EQ(children->array.size(), 1u);
    EXPECT_EQ(children->array[0].findPath("stats.hits.value")->number,
              7.0);
}

// ---------------------------------------------------------------------
// provenance
// ---------------------------------------------------------------------

TEST(ObsProvenance, ManifestCarriesBuildInfo)
{
    obs::RunManifest m = obs::makeManifest("unit");
    EXPECT_EQ(m.tool, "unit");
    EXPECT_FALSE(m.version.empty());
    EXPECT_FALSE(m.compiler.empty());
    EXPECT_GT(m.cplusplus, 201703L);   // the project requires C++20
}

TEST(ObsProvenance, DigestIsStableAndOrderSensitive)
{
    obs::RunManifest a = obs::makeManifest("unit");
    obs::RunManifest b = obs::makeManifest("unit");
    a.seed = b.seed = 7;
    a.addConfig("die_nx", std::uint64_t(24));
    b.addConfig("die_nx", std::uint64_t(24));
    EXPECT_EQ(a.digest(), b.digest());

    b.seed = 8;
    EXPECT_NE(a.digest(), b.digest());
    b.seed = 7;
    b.addConfig("die_ny", std::uint64_t(20));
    EXPECT_NE(a.digest(), b.digest());
}

TEST(ObsProvenance, ManifestJsonHasGoldenFields)
{
    obs::RunManifest m = obs::makeManifest("unit");
    m.seed = 3;
    m.threads = 4;
    m.addConfig("knob", "value");

    std::ostringstream os;
    JsonWriter w(os);
    obs::writeManifestJson(w, m);
    JsonValue parsed = parseOrDie(os.str());

    EXPECT_EQ(parsed.find("tool")->string, "unit");
    EXPECT_EQ(parsed.find("seed")->number, 3.0);
    EXPECT_EQ(parsed.find("threads")->number, 4.0);
    EXPECT_EQ(parsed.findPath("config.knob")->string, "value");
    const JsonValue *digest = parsed.find("config_digest");
    ASSERT_NE(digest, nullptr);
    EXPECT_EQ(digest->string.substr(0, 2), "0x");
}

// ---------------------------------------------------------------------
// StudyMeta
// ---------------------------------------------------------------------

TEST(ObsStudyMeta, SpeedupDegeneratesToOne)
{
    core::StudyMeta meta;
    EXPECT_EQ(meta.speedup(), 1.0);   // no cells

    meta.cells.push_back({0, "c", 1.0});
    meta.wall_seconds = 0.0;
    meta.serial_seconds = 1.0;
    EXPECT_EQ(meta.speedup(), 1.0);   // zero wall clock

    meta.wall_seconds = 2.0;
    meta.serial_seconds = 0.0;
    EXPECT_EQ(meta.speedup(), 1.0);   // zero serial time

    meta.serial_seconds = 6.0;
    EXPECT_DOUBLE_EQ(meta.speedup(), 3.0);
}

TEST(ObsStudyMeta, MetaJsonClampsNonFiniteTimings)
{
    core::StudyMeta meta;
    meta.study = "unit";
    meta.wall_seconds = std::numeric_limits<double>::infinity();
    meta.serial_seconds = std::nan("");

    std::ostringstream os;
    JsonWriter w(os);
    w.beginObject();
    core::writeMetaJson(w, meta);
    w.endObject();
    JsonValue parsed = parseOrDie(os.str());
    EXPECT_EQ(parsed.find("wall_seconds")->number, 0.0);
    EXPECT_EQ(parsed.find("serial_seconds")->number, 0.0);
    EXPECT_EQ(parsed.find("speedup")->number, 1.0);
}

TEST(ObsStudyMeta, TrackerCapturesWarnings)
{
    detail::setQuiet(true);   // keep the warning off the test output
    core::RunOptions opts;
    core::StudyTracker tracker("unit", 1, opts);
    tracker.runCell(0, "cell0",
                    [] { warn("synthetic unit-test warning"); });
    core::StudyMeta meta = tracker.finish();
    detail::setQuiet(false);

    ASSERT_EQ(meta.warnings.size(), 1u);
    EXPECT_NE(meta.warnings[0].find("synthetic unit-test warning"),
              std::string::npos);
}

// ---------------------------------------------------------------------
// ConsoleProgressSink line format
// ---------------------------------------------------------------------

TEST(ObsProgress, ConsoleSinkLineFormat)
{
    std::ostringstream os;
    core::ConsoleProgressSink sink(os);
    sink.studyStarted("memory", 2);
    core::CellInfo cell;
    cell.index = 0;
    cell.total = 2;
    cell.label = "gauss/dram32m";
    sink.cellFinished(cell, 0.5, 0.25);
    sink.studyFinished("memory", 1.25);

    // "[%s %zu/%zu] %-24s %6.2fs  (%3.0f%%)": a 13-char label pads
    // to 24 columns, 0.5 s renders as "  0.50".
    std::string expected_cell = "[memory 1/2] gauss/dram32m" +
                                std::string(11, ' ') +
                                "   0.50s  ( 25%)\n";
    EXPECT_EQ(os.str(), "[memory] 2 cells\n" + expected_cell +
                            "[memory] done in 1.25s\n");
}

// ---------------------------------------------------------------------
// json_parse
// ---------------------------------------------------------------------

TEST(JsonParse, ParsesTheFullGrammar)
{
    JsonValue v = parseOrDie(
        R"({"a": [1, -2.5, 1e3], "b": {"c": true, "d": null},)"
        R"( "s": "q\"\\\nA"})");
    EXPECT_EQ(v.findPath("a")->array.size(), 3u);
    EXPECT_EQ(v.find("a")->array[1].number, -2.5);
    EXPECT_EQ(v.find("a")->array[2].number, 1000.0);
    EXPECT_TRUE(v.findPath("b.c")->boolean);
    EXPECT_TRUE(v.findPath("b.d")->isNull());
    EXPECT_EQ(v.find("s")->string, "q\"\\\nA");
    EXPECT_EQ(v.findPath("b.missing"), nullptr);
    EXPECT_EQ(v.findPath("a.c"), nullptr);   // arrays have no keys
}

TEST(JsonParse, RejectsMalformedDocuments)
{
    JsonValue v;
    std::string error;
    EXPECT_FALSE(parseJson("{\"a\": }", v, error));
    EXPECT_FALSE(parseJson("[1, 2", v, error));
    EXPECT_FALSE(parseJson("\"unterminated", v, error));
    EXPECT_FALSE(parseJson("{} trailing", v, error));
    EXPECT_FALSE(parseJson("", v, error));
    EXPECT_NE(error.find("offset"), std::string::npos);
}

// ---------------------------------------------------------------------
// subsystem counter snapshots
// ---------------------------------------------------------------------

TEST(ObsSnapshots, EngineResultCarriesHierarchyCounters)
{
    workloads::WorkloadConfig cfg;
    cfg.records_per_thread = 2000;
    auto kernel = workloads::makeRmsKernel("gauss");
    trace::TraceBuffer buf = kernel->generate(cfg);

    mem::MemoryHierarchy hier(
        mem::makeHierarchyParams(mem::StackOption::Baseline4MB));
    mem::TraceEngine engine;
    mem::EngineResult res = engine.run(buf, hier);

    const obs::CounterSet &c = res.counters;
    EXPECT_EQ(c.value("accesses"), double(res.num_records));
    EXPECT_GT(c.value("l1d.hits") + c.value("l1d.misses"), 0.0);
    EXPECT_GE(c.value("l1d.miss_rate"), 0.0);
    EXPECT_LE(c.value("l1d.miss_rate"), 1.0);
    EXPECT_GT(c.value("bus.bytes"), 0.0);
}

TEST(ObsSnapshots, ThermalSolveRecordsResidualCurve)
{
    thermal::StackGeometry geom = thermal::makePlanarStack(6e-3, 6e-3);
    thermal::Mesh mesh(geom, 8, 8);
    thermal::PowerMap map(8, 8, 6e-3, 6e-3);
    map.addUniform(30.0);
    mesh.setLayerPower(geom.layerIndex("active1"), map);

    thermal::SolveInfo info;
    thermal::solveSteadyState(mesh, 1e-8, 4000, &info);

    obs::CounterSet c;
    thermal::appendSolveCounters(c, "thermal.unit.", info);
    EXPECT_GT(c.value("thermal.unit.iterations"), 0.0);
    EXPECT_EQ(c.value("thermal.unit.converged"), 1.0);
    ASSERT_EQ(c.series().size(), 1u);
    EXPECT_EQ(c.series()[0].first, "thermal.unit.residual_curve");
    EXPECT_FALSE(c.series()[0].second.empty());
}
