/**
 * @file
 * Tests for the stack3d-serve stack: the spec JSON wire forms
 * (round-trip exact, digest-stable), the shared digest
 * implementation (pinned known values), the result cache (LRU,
 * byte-identical hits, disk tier), and the study service end to end
 * (cache hit on duplicate, schema rejection, strict parsing).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "common/digest.hh"
#include "common/fault.hh"
#include "common/json.hh"
#include "common/json_parse.hh"
#include "core/study_json.hh"
#include "serve/request.hh"
#include "serve/result_cache.hh"
#include "serve/server.hh"
#include "serve/service.hh"

using namespace stack3d;
using namespace stack3d::core;

namespace {

JsonValue
parsed(const std::string &text)
{
    JsonValue v;
    std::string error;
    EXPECT_TRUE(parseJson(text, v, error)) << error;
    return v;
}

} // anonymous namespace

// ---------------------------------------------------------------------
// shared digest implementation
// ---------------------------------------------------------------------

TEST(Digest, PinnedFnv1aVectors)
{
    // Standard 64-bit FNV-1a test vectors. If these move, every
    // cached result and provenance digest in existence is invalidated
    // — bump obs::kSchemaVersion if you change the scheme.
    EXPECT_EQ(fnv1a(""), 0xcbf29ce484222325ull);
    EXPECT_EQ(fnv1a("a"), 0xaf63dc4c8601ec8cull);
    EXPECT_EQ(fnv1a("foobar"), 0x85944171f73967e8ull);
}

TEST(Digest, FieldBoundariesMatter)
{
    Fnv1aDigest ab_c;
    ab_c.mix(std::string("ab"));
    ab_c.mix(std::string("c"));
    Fnv1aDigest a_bc;
    a_bc.mix(std::string("a"));
    a_bc.mix(std::string("bc"));
    EXPECT_NE(ab_c.value(), a_bc.value());
}

TEST(Digest, HexFormIsStable)
{
    EXPECT_EQ(digestHex(0x1234abcdull), "0x000000001234abcd");
}

// ---------------------------------------------------------------------
// spec JSON round-trips
// ---------------------------------------------------------------------

TEST(SpecJson, RunOptionsRoundTripExact)
{
    RunOptions a;
    a.threads = 6;
    a.seed = 18446744073709551557ull;   // > 2^53: needs exact u64
    a.depth = 0.1;                      // not representable exactly
    a.scale = 1.0 / 3.0;
    a.verbosity = Verbosity::Verbose;
    a.thermal_precond = thermal::Precond::Jacobi;

    std::ostringstream os;
    JsonWriter w(os, true);
    writeRunOptionsJson(w, a);

    RunOptions b;
    std::string error;
    ASSERT_TRUE(parseRunOptions(parsed(os.str()), b, error)) << error;
    EXPECT_EQ(b.threads, a.threads);
    EXPECT_EQ(b.seed, a.seed);
    EXPECT_EQ(b.depth, a.depth);
    EXPECT_EQ(b.scale, a.scale);
    EXPECT_EQ(b.verbosity, a.verbosity);
    EXPECT_EQ(b.thermal_precond, a.thermal_precond);
}

TEST(SpecJson, MemorySpecRoundTripAndDigestStable)
{
    MemoryStudySpec a;
    a.benchmarks = {"gauss", "svd"};
    a.engine.window = 64;
    a.engine.issue_width = 2;
    a.engine.honor_dependencies = false;
    a.engine.warmup_fraction = 0.125;

    MemoryStudySpec b;
    std::string error;
    ASSERT_TRUE(
        parseMemoryStudySpec(parsed(canonicalSpecJson(a)), b, error))
        << error;
    EXPECT_EQ(b.benchmarks, a.benchmarks);
    EXPECT_EQ(b.engine.window, a.engine.window);
    EXPECT_EQ(b.engine.issue_width, a.engine.issue_width);
    EXPECT_EQ(b.engine.honor_dependencies,
              a.engine.honor_dependencies);
    EXPECT_EQ(b.engine.warmup_fraction, a.engine.warmup_fraction);
    EXPECT_EQ(canonicalSpecJson(b), canonicalSpecJson(a));
}

TEST(SpecJson, LogicSpecRoundTripAndDigestStable)
{
    LogicStudySpec a;
    a.suite.full_suite = true;
    a.suite.uops_per_trace = 123456789012345ull;
    a.power_breakdown.repeater_fraction = 0.11;
    a.power_breakdown.clock_reduction = 0.45;
    a.vf_model.perf_per_freq = 0.79;
    a.die_nx = 33;
    a.die_ny = 31;
    a.use_measured_gain = false;

    LogicStudySpec b;
    std::string error;
    ASSERT_TRUE(
        parseLogicStudySpec(parsed(canonicalSpecJson(a)), b, error))
        << error;
    EXPECT_EQ(b.suite.full_suite, a.suite.full_suite);
    EXPECT_EQ(b.suite.uops_per_trace, a.suite.uops_per_trace);
    EXPECT_EQ(b.power_breakdown.repeater_fraction,
              a.power_breakdown.repeater_fraction);
    EXPECT_EQ(b.power_breakdown.clock_reduction,
              a.power_breakdown.clock_reduction);
    EXPECT_EQ(b.vf_model.perf_per_freq, a.vf_model.perf_per_freq);
    EXPECT_EQ(b.die_nx, a.die_nx);
    EXPECT_EQ(b.die_ny, a.die_ny);
    EXPECT_EQ(b.use_measured_gain, a.use_measured_gain);
    EXPECT_EQ(canonicalSpecJson(b), canonicalSpecJson(a));
}

TEST(SpecJson, ThermalSpecsRoundTripAndDigestStable)
{
    StackThermalSpec a;
    a.die_nx = 20;
    a.die_ny = 18;
    StackThermalSpec b;
    std::string error;
    ASSERT_TRUE(
        parseStackThermalSpec(parsed(canonicalSpecJson(a)), b, error))
        << error;
    EXPECT_EQ(b.die_nx, a.die_nx);
    EXPECT_EQ(b.die_ny, a.die_ny);
    EXPECT_EQ(canonicalSpecJson(b), canonicalSpecJson(a));

    SensitivitySpec c;
    c.conductivities = {60, 12.5, 3.0625};
    c.die_nx = 16;
    c.die_ny = 14;
    SensitivitySpec d;
    ASSERT_TRUE(
        parseSensitivitySpec(parsed(canonicalSpecJson(c)), d, error))
        << error;
    EXPECT_EQ(d.conductivities, c.conductivities);
    EXPECT_EQ(d.die_nx, c.die_nx);
    EXPECT_EQ(d.die_ny, c.die_ny);
    EXPECT_EQ(canonicalSpecJson(d), canonicalSpecJson(c));
}

TEST(SpecJson, MissingKeysKeepDefaults)
{
    MemoryStudySpec spec;
    std::string error;
    ASSERT_TRUE(parseMemoryStudySpec(
        parsed("{\"benchmarks\": [\"gauss\"]}"), spec, error))
        << error;
    EXPECT_EQ(spec.benchmarks,
              std::vector<std::string>{std::string("gauss")});
    EXPECT_EQ(spec.engine.window, 128u);   // default survived
}

TEST(SpecJson, UnknownKeysRejected)
{
    StackThermalSpec spec;
    std::string error;
    EXPECT_FALSE(parseStackThermalSpec(
        parsed("{\"die_nx\": 20, \"die_nz\": 4}"), spec, error));
    EXPECT_NE(error.find("die_nz"), std::string::npos) << error;
}

TEST(SpecJson, TypeMismatchRejected)
{
    RunOptions opts;
    std::string error;
    EXPECT_FALSE(
        parseRunOptions(parsed("{\"threads\": \"four\"}"), opts,
                        error));
    EXPECT_NE(error.find("threads"), std::string::npos) << error;
}

// ---------------------------------------------------------------------
// request parsing + digests
// ---------------------------------------------------------------------

namespace {

const char *kThermalRequest =
    "{\"schema_version\": 2, \"study\": \"stack-thermal\", "
    "\"id\": \"r1\", \"options\": {\"seed\": 3}, "
    "\"spec\": {\"die_nx\": 14, \"die_ny\": 12}}";

} // anonymous namespace

TEST(Request, ParsesAndDigestIsReproducible)
{
    serve::Request a, b;
    std::string error;
    ASSERT_TRUE(serve::parseRequest(kThermalRequest, a, error))
        << error;
    ASSERT_TRUE(serve::parseRequest(kThermalRequest, b, error));
    EXPECT_EQ(a.kind, serve::StudyKind::StackThermal);
    EXPECT_EQ(a.id, "r1");
    EXPECT_EQ(a.options.seed, 3u);
    EXPECT_EQ(a.stack_thermal.die_nx, 14u);
    EXPECT_EQ(a.digest(), b.digest());
}

TEST(Request, DigestIgnoresThreadsVerbosityAndId)
{
    serve::Request base;
    std::string error;
    ASSERT_TRUE(serve::parseRequest(kThermalRequest, base, error));

    serve::Request variant;
    ASSERT_TRUE(serve::parseRequest(
        "{\"schema_version\": 2, \"study\": \"stack-thermal\", "
        "\"id\": \"other\", \"options\": {\"seed\": 3, \"threads\": 8,"
        " \"verbosity\": \"verbose\"}, "
        "\"spec\": {\"die_nx\": 14, \"die_ny\": 12}}",
        variant, error))
        << error;
    // The determinism guarantee makes results independent of threads
    // and verbosity, so they must not split the cache.
    EXPECT_EQ(variant.digest(), base.digest());

    serve::Request different;
    ASSERT_TRUE(serve::parseRequest(
        "{\"schema_version\": 2, \"study\": \"stack-thermal\", "
        "\"options\": {\"seed\": 4}, "
        "\"spec\": {\"die_nx\": 14, \"die_ny\": 12}}",
        different, error));
    EXPECT_NE(different.digest(), base.digest());
}

TEST(Request, SchemaVersionMismatchRejected)
{
    serve::Request req;
    std::string error;
    EXPECT_FALSE(serve::parseRequest(
        "{\"schema_version\": 1, \"study\": \"memory\"}", req,
        error));
    EXPECT_NE(error.find("schema_version"), std::string::npos)
        << error;

    EXPECT_FALSE(serve::parseRequest("{\"study\": \"memory\"}", req,
                                     error));
    EXPECT_NE(error.find("schema_version"), std::string::npos);
}

TEST(Request, MalformedAndUnknownRejected)
{
    serve::Request req;
    std::string error;
    EXPECT_FALSE(serve::parseRequest("{not json", req, error));
    EXPECT_FALSE(serve::parseRequest(
        "{\"schema_version\": 2, \"study\": \"quantum\"}", req,
        error));
    EXPECT_NE(error.find("quantum"), std::string::npos);
    EXPECT_FALSE(serve::parseRequest(
        "{\"schema_version\": 2, \"study\": \"memory\", "
        "\"extra\": 1}",
        req, error));
    EXPECT_NE(error.find("extra"), std::string::npos);
}

// ---------------------------------------------------------------------
// result cache
// ---------------------------------------------------------------------

TEST(ResultCache, HitReturnsByteIdenticalValue)
{
    serve::ResultCache cache(4);
    const std::string stored = "{\"x\":1.0000000000000002}";
    cache.put(7, stored);
    std::string out;
    ASSERT_TRUE(cache.tryGet(7, out));
    EXPECT_EQ(out, stored);
    EXPECT_EQ(cache.stats().hits, 1u);
}

TEST(ResultCache, LruEvictsLeastRecentlyUsed)
{
    serve::ResultCache cache(2);
    cache.put(1, "one");
    cache.put(2, "two");
    std::string out;
    ASSERT_TRUE(cache.tryGet(1, out));   // 1 is now most recent
    cache.put(3, "three");               // evicts 2
    EXPECT_FALSE(cache.tryGet(2, out));
    EXPECT_TRUE(cache.tryGet(1, out));
    EXPECT_TRUE(cache.tryGet(3, out));
    EXPECT_EQ(cache.stats().evictions, 1u);
    EXPECT_EQ(cache.size(), 2u);
}

TEST(ResultCache, CapacityZeroDisables)
{
    serve::ResultCache cache(0);
    cache.put(1, "one");
    std::string out;
    EXPECT_FALSE(cache.tryGet(1, out));
    EXPECT_EQ(cache.size(), 0u);
}

TEST(ResultCache, DiskTierSurvivesRestart)
{
    std::string dir =
        ::testing::TempDir() + "stack3d_serve_cache_test";
    {
        serve::ResultCache cache(4, dir);
        cache.put(42, "{\"answer\":42}");
        EXPECT_EQ(cache.stats().disk_writes, 1u);
    }
    serve::ResultCache fresh(4, dir);
    std::string out;
    ASSERT_TRUE(fresh.tryGet(42, out));
    EXPECT_EQ(out, "{\"answer\":42}");
    EXPECT_EQ(fresh.stats().disk_hits, 1u);
    std::remove((dir + "/" + digestHex(42).substr(2) + ".json")
                    .c_str());
}

// ---------------------------------------------------------------------
// study service end to end
// ---------------------------------------------------------------------

namespace {

serve::ServiceOptions
tinyServiceOptions()
{
    serve::ServiceOptions options;
    options.workers = 0;   // inline execution: deterministic tests
    options.cache_entries = 8;
    options.max_study_threads = 1;
    return options;
}

} // anonymous namespace

TEST(StudyService, DuplicateRequestHitsCacheByteIdentically)
{
    serve::StudyService service(tinyServiceOptions());
    serve::ServeResult cold = service.handle(kThermalRequest);
    ASSERT_EQ(cold.status, serve::ServeResult::Status::Ok)
        << cold.error;
    EXPECT_FALSE(cold.cached);
    ASSERT_FALSE(cold.report_json.empty());

    serve::ServeResult hit = service.handle(kThermalRequest);
    ASSERT_EQ(hit.status, serve::ServeResult::Status::Ok);
    EXPECT_TRUE(hit.cached);
    // The serve cache contract: a hit returns the byte-identical
    // report the cold run produced.
    EXPECT_EQ(hit.report_json, cold.report_json);
    EXPECT_EQ(hit.digest_hex, cold.digest_hex);

    obs::CounterSet counters = service.counters();
    EXPECT_EQ(counters.value("serve.requests"), 2.0);
    EXPECT_EQ(counters.value("serve.cache.hits"), 1.0);
    EXPECT_EQ(counters.value("serve.cache.misses"), 1.0);
}

TEST(StudyService, ReportIsValidJsonWithStudyMetaPayload)
{
    serve::StudyService service(tinyServiceOptions());
    serve::ServeResult result = service.handle(kThermalRequest);
    ASSERT_EQ(result.status, serve::ServeResult::Status::Ok);

    JsonValue report = parsed(result.report_json);
    const JsonValue *study = report.find("study");
    ASSERT_NE(study, nullptr);
    EXPECT_EQ(study->string, "stack-thermal");
    EXPECT_NE(report.find("meta"), nullptr);
    ASSERT_NE(report.find("payload"), nullptr);
    const JsonValue *opts = report.find("payload")->find("options");
    ASSERT_NE(opts, nullptr);
    EXPECT_EQ(opts->array.size(), 4u);

    // And the full response line is itself one valid JSON document.
    JsonValue line = parsed(result.line);
    EXPECT_NE(line.find("report"), nullptr);
}

TEST(StudyService, BadRequestsAreErrorsNotCrashes)
{
    serve::StudyService service(tinyServiceOptions());
    serve::ServeResult bad = service.handle("{\"schema_version\":1}");
    EXPECT_EQ(bad.status, serve::ServeResult::Status::Error);
    EXPECT_NE(bad.line.find("\"status\":\"error\""),
              std::string::npos);

    // A user-level failure inside the study (unknown benchmark)
    // surfaces as an error response, and the service keeps serving.
    serve::ServeResult fail = service.handle(
        "{\"schema_version\": 2, \"study\": \"memory\", "
        "\"spec\": {\"benchmarks\": [\"bogus\"]}}");
    EXPECT_EQ(fail.status, serve::ServeResult::Status::Error);

    serve::ServeResult ok = service.handle(kThermalRequest);
    EXPECT_EQ(ok.status, serve::ServeResult::Status::Ok) << ok.error;
}

// ---------------------------------------------------------------------
// disk-tier failure modes: every corruption degrades to a cold
// compute (a miss), never a crash or a wrong-bytes response
// ---------------------------------------------------------------------

namespace {

std::string
cacheEntryPath(const std::string &dir, std::uint64_t digest)
{
    return dir + "/" + digestHex(digest).substr(2) + ".json";
}

/** Fresh temp cache dir holding one valid entry for digest 42. */
std::string
seededCacheDir(const std::string &name)
{
    std::string dir = ::testing::TempDir() + name;
    {
        serve::ResultCache seeder(4, dir);
        seeder.put(42, "{\"answer\":42}");
    }
    return dir;
}

void
removeCacheDir(const std::string &dir)
{
    // Best effort; entries are the only files the tests create.
    std::remove(cacheEntryPath(dir, 42).c_str());
    std::remove((cacheEntryPath(dir, 42) + ".corrupt").c_str());
    ::rmdir(dir.c_str());
}

} // anonymous namespace

TEST(ResultCacheFailures, TruncatedEntryQuarantinedNotServed)
{
    std::string dir = seededCacheDir("s3d_cache_trunc");
    serve::ResultCache cache(4, dir);   // scrub sees a valid entry
    EXPECT_EQ(cache.stats().corrupt, 0u);

    // Crash mid-write aftermath: the entry loses its tail (payload
    // and part of the digest trailer).
    {
        std::ofstream os(cacheEntryPath(dir, 42),
                         std::ios::binary | std::ios::trunc);
        os << "{\"answer\":4";
    }
    std::string out;
    EXPECT_FALSE(cache.tryGet(42, out));
    EXPECT_EQ(cache.stats().corrupt, 1u);
    // The bad bytes were moved aside, not deleted silently.
    std::ifstream quarantined(cacheEntryPath(dir, 42) + ".corrupt");
    EXPECT_TRUE(quarantined.good());
    // The next lookup is a plain miss: nothing re-serves the file.
    EXPECT_FALSE(cache.tryGet(42, out));
    removeCacheDir(dir);
}

TEST(ResultCacheFailures, FlippedByteQuarantinedNotServed)
{
    std::string dir = seededCacheDir("s3d_cache_flip");
    serve::ResultCache cache(4, dir);

    std::string path = cacheEntryPath(dir, 42);
    std::string raw;
    {
        std::ifstream in(path, std::ios::binary);
        raw.assign(std::istreambuf_iterator<char>(in),
                   std::istreambuf_iterator<char>());
    }
    ASSERT_FALSE(raw.empty());
    raw[raw.size() / 3] ^= 0x01;   // single bit flip in the payload
    {
        std::ofstream os(path, std::ios::binary | std::ios::trunc);
        os << raw;
    }
    std::string out;
    EXPECT_FALSE(cache.tryGet(42, out));
    EXPECT_EQ(cache.stats().corrupt, 1u);
    removeCacheDir(dir);
}

TEST(ResultCacheFailures, StartupScrubQuarantinesBadEntries)
{
    std::string dir = seededCacheDir("s3d_cache_scrub");
    {
        std::ofstream os(cacheEntryPath(dir, 42),
                         std::ios::binary | std::ios::trunc);
        os << "garbage with no trailer";
    }
    // Leftover tmp file from a crash mid-put: must be swept too.
    std::string tmp = cacheEntryPath(dir, 7) + ".tmp";
    {
        std::ofstream os(tmp, std::ios::binary);
        os << "half-";
    }
    serve::ResultCache cache(4, dir);
    EXPECT_EQ(cache.stats().scrubbed, 2u);
    EXPECT_EQ(cache.stats().corrupt, 1u);
    std::ifstream gone(tmp);
    EXPECT_FALSE(gone.good());
    std::string out;
    EXPECT_FALSE(cache.tryGet(42, out));
    removeCacheDir(dir);
}

TEST(ResultCacheFailures, UnwritableCacheDirDegradesToMemory)
{
    // The disk tier can never be created; puts must still succeed
    // in memory and lookups must not crash.
    serve::ResultCache cache(4, "/nonexistent-s3d/cache");
    cache.put(1, "{\"v\":1}");
    EXPECT_EQ(cache.stats().disk_writes, 0u);
    std::string out;
    EXPECT_TRUE(cache.tryGet(1, out));
    EXPECT_EQ(out, "{\"v\":1}");
    EXPECT_FALSE(cache.tryGet(2, out));
}

TEST(ResultCacheFailures, FaultInjectedWriteFailureDegradesToCold)
{
    std::string dir = ::testing::TempDir() + "s3d_cache_faultw";
    std::string error;
    ASSERT_TRUE(
        FaultRegistry::configure("serve.disk.write:1.0", 1, error))
        << error;
    {
        serve::ResultCache cache(4, dir);
        cache.put(42, "{\"answer\":42}");
        EXPECT_EQ(cache.stats().disk_writes, 0u);
        // The memory tier still serves within this process life.
        std::string out;
        EXPECT_TRUE(cache.tryGet(42, out));
    }
    FaultRegistry::reset();
    // After a restart nothing persisted: the lookup degrades to a
    // miss (a cold compute at the service layer), not a crash.
    serve::ResultCache fresh(4, dir);
    std::string out;
    EXPECT_FALSE(fresh.tryGet(42, out));
    removeCacheDir(dir);
}

// ---------------------------------------------------------------------
// deadlines, cancellation, fault-injected study failures
// ---------------------------------------------------------------------

TEST(Request, DeadlineParsesAndIsExcludedFromDigest)
{
    serve::Request plain, deadlined;
    std::string error;
    ASSERT_TRUE(serve::parseRequest(kThermalRequest, plain, error))
        << error;
    std::string with_deadline =
        "{\"schema_version\": 2, \"study\": \"stack-thermal\", "
        "\"id\": \"r1\", \"deadline_ms\": 250, "
        "\"options\": {\"seed\": 3}, "
        "\"spec\": {\"die_nx\": 14, \"die_ny\": 12}}";
    ASSERT_TRUE(
        serve::parseRequest(with_deadline, deadlined, error))
        << error;
    EXPECT_EQ(deadlined.deadline_ms, 250u);
    // QoS, not identity: the deadline must not split the cache.
    EXPECT_EQ(plain.digest(), deadlined.digest());
}

TEST(StudyService, DeadlineExpiryIsTimeoutAndFreesTheSlot)
{
    serve::StudyService service(tinyServiceOptions());
    // 1 ms cannot cover a cold stack-thermal run: the execution
    // observes its token at a checkpoint and stops.
    serve::ServeResult late = service.handle(
        "{\"schema_version\": 2, \"study\": \"stack-thermal\", "
        "\"deadline_ms\": 1, \"options\": {\"seed\": 3}, "
        "\"spec\": {\"die_nx\": 14, \"die_ny\": 12}}");
    EXPECT_EQ(late.status, serve::ServeResult::Status::Timeout);
    EXPECT_NE(late.line.find("\"status\":\"timeout\""),
              std::string::npos);

    obs::CounterSet counters = service.counters();
    EXPECT_EQ(counters.value("serve.timeouts"), 1.0);

    // The admission slot came back: the same service still serves.
    serve::ServeResult ok = service.handle(kThermalRequest);
    EXPECT_EQ(ok.status, serve::ServeResult::Status::Ok) << ok.error;
}

TEST(StudyService, GenerousDeadlineStillCompletes)
{
    serve::StudyService service(tinyServiceOptions());
    serve::ServeResult ok = service.handle(
        "{\"schema_version\": 2, \"study\": \"stack-thermal\", "
        "\"deadline_ms\": 600000, \"options\": {\"seed\": 3}, "
        "\"spec\": {\"die_nx\": 14, \"die_ny\": 12}}");
    EXPECT_EQ(ok.status, serve::ServeResult::Status::Ok) << ok.error;
}

TEST(StudyService, FaultInjectedCellFailureIsErrorNotCrash)
{
    std::string error;
    ASSERT_TRUE(
        FaultRegistry::configure("study.cell.fail:1.0", 1, error))
        << error;
    serve::StudyService service(tinyServiceOptions());
    serve::ServeResult fail = service.handle(kThermalRequest);
    FaultRegistry::reset();
    EXPECT_EQ(fail.status, serve::ServeResult::Status::Error);
    EXPECT_NE(fail.error.find("fault injected"), std::string::npos);

    // With the fault disarmed the service recovers on the spot.
    serve::ServeResult ok = service.handle(kThermalRequest);
    EXPECT_EQ(ok.status, serve::ServeResult::Status::Ok) << ok.error;
}

TEST(StudyService, RejectionCarriesRetryAfterHint)
{
    serve::ServiceOptions options = tinyServiceOptions();
    serve::StudyService service(options);
    // Inline mode never queues, so provoke the rejection through
    // drain: a draining service sheds everything new.
    service.drain();
    serve::ServeResult shed = service.handle(kThermalRequest);
    EXPECT_EQ(shed.status, serve::ServeResult::Status::Rejected);
    EXPECT_GT(shed.retry_after_ms, 0u);
    EXPECT_NE(shed.line.find("\"retry_after_ms\":"),
              std::string::npos);
}

// ---------------------------------------------------------------------
// pipe transport: line caps and control-line classification
// ---------------------------------------------------------------------

TEST(PipeServer, OversizedLineGetsCleanErrorResponse)
{
    serve::ServiceOptions options = tinyServiceOptions();
    options.max_line_bytes = 256;
    serve::StudyService service(options);
    std::string big(options.max_line_bytes * 4, 'x');
    std::istringstream in(big + "\n" + std::string(kThermalRequest) +
                          "\n");
    std::ostringstream out;
    std::uint64_t handled = serve::runPipeServer(service, in, out);
    EXPECT_EQ(handled, 2u);
    // First response: the cap error. Second: the study still ran.
    std::string text = out.str();
    EXPECT_NE(text.find("exceeds the 256 byte cap"),
              std::string::npos);
    EXPECT_NE(text.find("\"status\":\"ok\""), std::string::npos);
    EXPECT_EQ(service.counters().value("serve.line_overflows"), 1.0);
}

// ---------------------------------------------------------------------
// telemetry: trace IDs, stats/health/flight ops, both transports
// ---------------------------------------------------------------------

TEST(StudyService, TraceIdIsEchoedAndExcludedFromDigest)
{
    serve::StudyService service(tinyServiceOptions());
    serve::ServeResult cold = service.handle(kThermalRequest);
    ASSERT_EQ(cold.status, serve::ServeResult::Status::Ok)
        << cold.error;
    EXPECT_FALSE(cold.trace_id.empty());   // generated when absent

    // Same spec plus a client trace_id: pure observability, so the
    // digest is unchanged and the result cache must hit.
    serve::ServeResult hit = service.handle(
        "{\"schema_version\": 2, \"study\": \"stack-thermal\", "
        "\"id\": \"r1\", \"trace_id\": \"t-client-7\", "
        "\"options\": {\"seed\": 3}, "
        "\"spec\": {\"die_nx\": 14, \"die_ny\": 12}}");
    EXPECT_EQ(hit.status, serve::ServeResult::Status::Ok) << hit.error;
    EXPECT_TRUE(hit.cached);
    EXPECT_EQ(hit.trace_id, "t-client-7");
    EXPECT_NE(hit.line.find("\"trace_id\":\"t-client-7\""),
              std::string::npos);
    EXPECT_EQ(service.counters().value("serve.cache.hits"), 1.0);
}

TEST(StudyService, StatsHealthFlightJsonShapes)
{
    serve::StudyService service(tinyServiceOptions());
    (void)service.handle(kThermalRequest);
    (void)service.handle(kThermalRequest);   // cache hit

    JsonValue stats = parsed(service.statsJson());
    EXPECT_EQ(stats.find("schema_version")->number, 2.0);
    EXPECT_EQ(stats.findPath("counters.serve.requests")->number, 2.0);
    EXPECT_EQ(stats.findPath("counters.serve.cache.hits")->number,
              1.0);
    // One cold sample and one hit sample landed in the instruments.
    const JsonValue *hist = stats.find("histograms");
    ASSERT_NE(hist, nullptr);
    EXPECT_EQ(
        hist->findPath("serve.latency.cold_s.count")->number, 1.0);
    EXPECT_EQ(
        hist->findPath("serve.latency.hit_s.count")->number, 1.0);

    JsonValue health = parsed(service.healthJson());
    EXPECT_TRUE(health.findPath("health.ok")->boolean);
    EXPECT_FALSE(health.findPath("health.draining")->boolean);
    EXPECT_EQ(health.findPath("health.requests")->number, 2.0);

    JsonValue flight = parsed(service.flightJson());
    EXPECT_EQ(flight.findPath("flight.noted")->number, 2.0);
    const JsonValue *entries = flight.findPath("flight.entries");
    ASSERT_NE(entries, nullptr);
    ASSERT_EQ(entries->array.size(), 2u);
    EXPECT_FALSE(entries->array[0].find("cached")->boolean);
    EXPECT_TRUE(entries->array[1].find("cached")->boolean);
}

TEST(PipeServer, StatsHealthFlightOpsRoundTrip)
{
    serve::StudyService service(tinyServiceOptions());
    std::istringstream in(std::string(kThermalRequest) + "\n" +
                          "{\"op\": \"stats\"}\n"
                          "{\"op\": \"health\"}\n"
                          "{\"op\": \"flight\"}\n"
                          "{\"op\": \"stop\"}\n");
    std::ostringstream out;
    std::uint64_t handled = serve::runPipeServer(service, in, out);
    EXPECT_EQ(handled, 5u);

    // One response per line, each a complete JSON document.
    std::istringstream lines(out.str());
    std::string line;
    std::vector<JsonValue> responses;
    while (std::getline(lines, line))
        responses.push_back(parsed(line));
    ASSERT_EQ(responses.size(), 5u);
    EXPECT_EQ(responses[1].findPath("counters.serve.ok")->number, 1.0);
    EXPECT_NE(responses[1].find("histograms"), nullptr);
    EXPECT_TRUE(responses[2].findPath("health.ok")->boolean);
    EXPECT_EQ(responses[3].findPath("flight.noted")->number, 1.0);
    EXPECT_TRUE(responses[4].find("stopping")->boolean);
    // Op lines are control traffic, not requests.
    EXPECT_EQ(service.counters().value("serve.requests"), 1.0);
}

TEST(TcpServer, StatsAndHealthOverASocket)
{
    serve::StudyService service(tinyServiceOptions());
    std::atomic<unsigned> bound_port{0};
    std::thread server([&] {
        serve::runTcpServer(service, 0, 1, &bound_port);
    });
    // seq_cst: pairs with the server's publishing store.
    while (bound_port.load(std::memory_order_seq_cst) == 0)
        std::this_thread::yield();

    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(std::uint16_t(
        bound_port.load(std::memory_order_seq_cst)));
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                        sizeof(addr)),
              0);

    const std::string script = std::string(kThermalRequest) + "\n" +
                               "{\"op\": \"stats\"}\n"
                               "{\"op\": \"health\"}\n"
                               "{\"op\": \"stop\"}\n";
    ASSERT_EQ(::write(fd, script.data(), script.size()),
              ssize_t(script.size()));

    std::string reply;
    char buf[4096];
    ssize_t n;
    while ((n = ::read(fd, buf, sizeof(buf))) > 0)
        reply.append(buf, std::size_t(n));
    ::close(fd);
    server.join();

    std::istringstream lines(reply);
    std::string line;
    std::vector<JsonValue> responses;
    while (std::getline(lines, line))
        responses.push_back(parsed(line));
    ASSERT_EQ(responses.size(), 4u);
    EXPECT_EQ(responses[0].find("status")->string, "ok");
    EXPECT_EQ(responses[1].findPath("counters.serve.requests")->number,
              1.0);
    EXPECT_TRUE(responses[2].findPath("health.ok")->boolean);
    EXPECT_TRUE(responses[3].find("stopping")->boolean);
}

TEST(PipeServer, TraceOpCapturesSpansToAFile)
{
    serve::StudyService service(tinyServiceOptions());
    const std::string path = "serve_trace_op_test.json";
    std::istringstream in("{\"op\": \"trace\", \"action\": \"start\"}\n" +
                          std::string(kThermalRequest) + "\n" +
                          "{\"op\": \"trace\", \"action\": \"stop\", "
                          "\"path\": \"" +
                          path + "\"}\n");
    std::ostringstream out;
    std::uint64_t handled = serve::runPipeServer(service, in, out);
    EXPECT_EQ(handled, 3u);
    EXPECT_NE(out.str().find("\"tracing\":true"), std::string::npos);
    EXPECT_NE(out.str().find("\"tracing\":false"), std::string::npos);

    std::ifstream trace(path);
    ASSERT_TRUE(trace.good());
    std::stringstream content;
    content << trace.rdbuf();
    // A Chrome trace with at least the request's serve span in it,
    // labeled with the request's trace id.
    JsonValue v = parsed(content.str());
    ASSERT_NE(v.find("traceEvents"), nullptr);
    EXPECT_NE(content.str().find("serve/stack-thermal"),
              std::string::npos);
    std::remove(path.c_str());
}

TEST(PipeServer, ControlLinesClassifiedOnTopLevelOpOnly)
{
    serve::StudyService service(tinyServiceOptions());
    // The id merely *contains* "op" (with embedded quotes, the old
    // substring pre-filter's worst case); it must route to the
    // service as a request, not be swallowed as a control line.
    std::istringstream in(
        "{\"schema_version\": 2, \"study\": \"stack-thermal\", "
        "\"id\": \"has \\\"op\\\" inside\", "
        "\"options\": {\"seed\": 3}, "
        "\"spec\": {\"die_nx\": 14, \"die_ny\": 12}}\n"
        "{ \"op\" : \"counters\" }\n"
        "{\"op\": \"flush\"}\n"
        "{\"op\": \"stop\"}\n");
    std::ostringstream out;
    std::uint64_t handled = serve::runPipeServer(service, in, out);
    EXPECT_EQ(handled, 4u);
    std::string text = out.str();
    EXPECT_NE(text.find("has \\\"op\\\" inside"), std::string::npos);
    EXPECT_NE(text.find("serve.requests"), std::string::npos);
    EXPECT_NE(text.find("unknown op 'flush'"), std::string::npos);
    EXPECT_NE(text.find("\"stopping\":true"), std::string::npos);
    EXPECT_EQ(service.counters().value("serve.ok"), 1.0);
}
