/**
 * @file
 * Tests for the power models: the 3D roll-up, the Table 5 V/f
 * scaling laws, and the Figure 7 cache power budgets.
 */

#include <gtest/gtest.h>

#include "power/scaling.hh"

using namespace stack3d;
using namespace stack3d::power;

TEST(Breakdown, RollUpNearFifteenPercent)
{
    LogicPowerBreakdown b;
    double saving = 1.0 - b.stackedRelativePower();
    EXPECT_NEAR(saving, 0.15, 0.025);
}

TEST(Breakdown, CategoriesCompose)
{
    LogicPowerBreakdown b;
    b.repeater_fraction = 0.2;
    b.repeater_reduction = 0.5;
    b.repeating_latch_fraction = 0.0;
    b.clock_fraction = 0.0;
    b.pipeline_latch_fraction = 0.0;
    EXPECT_DOUBLE_EQ(b.stackedRelativePower(), 0.9);
}

TEST(VfModel, PaperConversionLaws)
{
    VfScalingModel m;
    // 0.82% performance per 1% frequency.
    EXPECT_NEAR(m.relativePerf(1.18), 1.0 + 0.82 * 0.18, 1e-12);
    // 1% frequency per 1% Vcc.
    EXPECT_DOUBLE_EQ(m.relativeFreq(0.92), 0.92);
    // P ~ V^2 f.
    EXPECT_NEAR(m.relativePower(0.92, 0.92), 0.92 * 0.92 * 0.92,
                1e-12);
}

TEST(Table5, RowsMatchThePaperStructure)
{
    // Use the paper's nominal design point: +15% perf, -15% power.
    auto rows = computeTable5Points(147.0, 0.15, 0.15);
    ASSERT_EQ(rows.size(), 5u);

    EXPECT_STREQ(rows[0].label, "Baseline");
    EXPECT_DOUBLE_EQ(rows[0].power_w, 147.0);
    EXPECT_DOUBLE_EQ(rows[0].perf_rel, 1.0);

    // Same Pwr: frequency spends the savings; paper: f 1.18, 129%.
    EXPECT_STREQ(rows[1].label, "Same Pwr");
    EXPECT_NEAR(rows[1].power_w, 147.0, 1e-9);
    EXPECT_NEAR(rows[1].freq, 1.18, 0.01);
    EXPECT_NEAR(rows[1].perf_rel, 1.30, 0.03);

    // Same Freq: the plain 3D point; paper: 125 W, 115%.
    EXPECT_STREQ(rows[2].label, "Same Freq.");
    EXPECT_NEAR(rows[2].power_w, 125.0, 0.2);
    EXPECT_NEAR(rows[2].perf_rel, 1.15, 1e-9);

    // Same Temp: Vcc 0.92; paper: 97.28 W, 108%.
    EXPECT_STREQ(rows[3].label, "Same Temp");
    EXPECT_NEAR(rows[3].vcc, 0.92, 1e-9);
    EXPECT_NEAR(rows[3].power_w, 97.28, 0.35);
    EXPECT_NEAR(rows[3].perf_rel, 1.08, 0.01);

    // Same Perf: performance back to 100%.
    EXPECT_STREQ(rows[4].label, "Same Perf.");
    EXPECT_NEAR(rows[4].perf_rel, 1.0, 1e-9);
    EXPECT_LT(rows[4].power_w, 80.0);   // paper: 68.2 W
    EXPECT_NEAR(rows[4].vcc, rows[4].freq, 1e-12);
}

TEST(Table5, PowerRelConsistent)
{
    auto rows = computeTable5Points(147.0, 0.15, 0.15);
    for (const auto &row : rows)
        EXPECT_NEAR(row.power_rel, row.power_w / 147.0, 1e-9);
}

TEST(CachePower, Figure7Budgets)
{
    EXPECT_DOUBLE_EQ(cachePowerWatts(mem::StackOption::Baseline4MB),
                     7.0);
    // 12 MB: 7 W on-die + 14 W stacked = 21 W total cache power.
    EXPECT_DOUBLE_EQ(cachePowerWatts(mem::StackOption::Sram12MB),
                     21.0);
    EXPECT_DOUBLE_EQ(cachePowerWatts(mem::StackOption::Dram32MB), 3.1);
    EXPECT_DOUBLE_EQ(cachePowerWatts(mem::StackOption::Dram64MB),
                     13.2);
}

TEST(BusPower, TwentyMilliwattsPerGbit)
{
    // 16 GB/s = 128 Gb/s -> 2.56 W.
    EXPECT_NEAR(busPowerWatts(16.0), 2.56, 1e-9);
    EXPECT_DOUBLE_EQ(busPowerWatts(0.0), 0.0);
}

TEST(Table5, BadBaselineIsFatal)
{
    EXPECT_DEATH(computeTable5Points(0.0, 0.15, 0.15), "");
}
