// lint3d fixture: safety rules — positive cases.

#include <cstring>

namespace fixture {

struct Blob
{
    int values[4];
};

int *
nakedNew()
{
    int *p = new int(7);
    return p;
}

void
nakedDelete(int *p)
{
    delete p;
}

void
rawCopy(Blob &dst, const Blob &src)
{
    std::memcpy(&dst, &src, sizeof(Blob));
}

bool
exactFloatCompare(double x)
{
    return x == 0.0;
}

bool
exactFloatInequality(double x)
{
    return 1.5 != x;
}

int
cStyleCast(double value)
{
    int truncated = (int)value;
    return truncated;
}

const unsigned char *
cStylePointerCast(const char *text)
{
    return (const unsigned char *)text;
}

} // namespace fixture
