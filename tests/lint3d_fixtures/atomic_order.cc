// lint3d fixture: conc-atomic-order — positives (a declared atomic
// relying on the defaulted seq_cst, a distinctive fetch_* on an
// unresolvable object), a suppressed site, and clean near-misses
// (explicit orders everywhere; plain load/store methods on a
// non-atomic object must not match).

#include <atomic>

namespace fixture_atomic {

std::atomic<int> counter{0};
std::atomic<bool> ready{false};

// Not an atomic: a tracer with load/store-shaped methods. Calls on
// it must stay clean (the rule keys on the object's declared type).
struct Tracer
{
    int load() { return 0; }
    void store(int) {}
};

std::atomic<long> &sharedTally();

inline int
positives(Tracer &t)
{
    counter.store(1);                       // finding: defaulted order
    int v = counter.load();                 // finding: defaulted order
    bool was = ready.exchange(true);        // finding: defaulted order
    sharedTally().fetch_add(2);             // finding: fetch_* is
                                            // atomic-only, object
                                            // unresolved
    // lint3d: conc-atomic-order-ok
    counter.store(3);                       // suppressed
    (void)t;
    return v + int(was);
}

inline int
clean(Tracer &t)
{
    counter.store(1, std::memory_order_release);
    int v = counter.load(std::memory_order_acquire);
    v += int(ready.exchange(true, std::memory_order_acq_rel));
    sharedTally().fetch_add(2, std::memory_order_relaxed);
    t.store(7);          // non-atomic object: clean
    return v + t.load(); // non-atomic object: clean
}

} // namespace fixture_atomic
