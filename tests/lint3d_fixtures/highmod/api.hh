// lint3d fixture: arch-layering — the high layer's public header.

#ifndef STACK3D_HIGHMOD_API_HH
#define STACK3D_HIGHMOD_API_HH

namespace highmod {

int derivedValue();

} // namespace highmod

#endif // STACK3D_HIGHMOD_API_HH
