// lint3d fixture: arch-layering — legal edges only: the layer's own
// header (self edge) and a declared dep (highmod -> lowmod). This
// file must stay clean.

#include "highmod/api.hh"
#include "lowmod/api.hh"

namespace highmod {

int
derivedValue()
{
    return lowmod::baseValue() + 1;
}

} // namespace highmod
