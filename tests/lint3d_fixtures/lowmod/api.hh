// lint3d fixture: arch-layering — the low layer's public header.

#ifndef STACK3D_LOWMOD_API_HH
#define STACK3D_LOWMOD_API_HH

namespace lowmod {

int baseValue();

} // namespace lowmod

#endif // STACK3D_LOWMOD_API_HH
