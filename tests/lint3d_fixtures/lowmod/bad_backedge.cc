// lint3d fixture: arch-layering — a deliberate back-edge. The
// `lowmod` layer declares no deps, so including a `highmod` header
// from here crosses the DAG and must be a finding.

#include "highmod/api.hh"
#include "lowmod/api.hh"

namespace lowmod {

int
baseValue()
{
    return highmod::derivedValue() - 1;
}

} // namespace lowmod
