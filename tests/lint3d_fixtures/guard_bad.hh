// lint3d fixture: hyg-header-guard — #pragma once instead of the
// derived STACK3D_GUARD_BAD_HH guard is a finding.

#pragma once

namespace fixture_guard {

constexpr int kWrong = 7;

} // namespace fixture_guard
