// lint3d fixture: near-miss constructs that must NOT fire. A finding
// in this file is a false positive — a lint3d bug.

#include <chrono>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace fixture {

struct Generator
{
    // Member named like the banned function: calls through an object
    // are project types, not libc.
    int rand() { return 4; }
    void memcpy(void *dst, const void *src, unsigned n);
};

struct NoCopy
{
    // `= delete` is not a deallocation.
    NoCopy(const NoCopy &) = delete;
    NoCopy &operator=(const NoCopy &) = delete;
    NoCopy() = default;
};

int
memberCalls(Generator &gen)
{
    // rand/memcpy through a member: clean.
    int v = gen.rand();
    gen.memcpy(nullptr, nullptr, 0);
    return v;
}

double
orderedIteration()
{
    // Ordered map: iteration order is well-defined.
    std::map<std::string, double> table;
    double sum = 0.0;
    for (const auto &kv : table)
        sum += kv.second;
    return sum;
}

long long
steadyIntervals()
{
    // steady_clock is the sanctioned clock for intervals.
    auto t0 = std::chrono::steady_clock::now();
    auto t1 = std::chrono::steady_clock::now();
    return (t1 - t0).count();
}

void
discardIdiom(int important)
{
    // (void)x is the discard idiom, not a C-style cast.
    (void)important;
}

std::unique_ptr<int>
ownedAllocation()
{
    // make_unique, not naked new.
    return std::make_unique<int>(9);
}

bool
toleranceCompare(double a, double b)
{
    // Tolerance-based comparison: clean.
    double diff = a > b ? a - b : b - a;
    return diff < 1e-9;
}

int
functionalCast(double value)
{
    // Functional and static_cast forms: clean.
    int a = int(value);
    int b = static_cast<int>(value);
    return a + b;
}

} // namespace fixture
