// lint3d fixture: determinism rules — positive cases.
// Not compiled; scanned by the lint3d_fixtures ctest entry and
// diffed against golden_findings.json.

#include <cstdlib>
#include <ctime>
#include <numeric>
#include <unordered_map>
#include <vector>

namespace fixture {

int
usesRand()
{
    return std::rand();
}

void
seedsFromClock()
{
    std::srand(unsigned(time(nullptr)));
}

unsigned long
usesRandomDevice()
{
    std::random_device rd;
    return rd();
}

double
iteratesUnordered()
{
    std::unordered_map<int, double> weights;
    double sum = 0.0;
    for (const auto &kv : weights)
        sum += kv.second;
    return sum;
}

double
explicitIteratorLoop()
{
    std::unordered_map<int, double> table;
    double sum = 0.0;
    for (auto it = table.begin(); it != table.end(); ++it)
        sum += it->second;
    return sum;
}

double
unorderedReduce(const std::vector<double> &v)
{
    return std::reduce(v.begin(), v.end());
}

} // namespace fixture
