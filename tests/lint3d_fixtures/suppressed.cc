// lint3d fixture: suppressed findings. Every trigger below carries a
// named-rule suppression, so this file contributes to the suppressed
// count and zero findings.

#include <cstdlib>
#include <unordered_map>

namespace fixture {

int
suppressedRand()
{
    return std::rand(); // lint3d: det-rand-ok
}

int
suppressedUnordered()
{
    // Whole-line comment form: suppresses the next line.
    // lint3d: det-unordered-container-ok
    std::unordered_map<int, int> cache;
    return int(cache.size());
}

bool
suppressedFloatEq(double x)
{
    return x == 0.0; // lint3d: safe-float-eq-ok
}

int *
suppressedNew()
{
    return new int(3); // lint3d: safe-naked-new-ok
}

} // namespace fixture
