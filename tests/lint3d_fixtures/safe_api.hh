// lint3d fixture: header-only rules (safe-nodiscard,
// conc-static-local) — positives and clean near-misses.

#ifndef LINT3D_FIXTURE_SAFE_API_HH
#define LINT3D_FIXTURE_SAFE_API_HH

#include <string>

namespace fixture {

// Positive: status-returning parse* API without [[nodiscard]].
bool parseConfigLine(const std::string &line);

// Positive: try* API without [[nodiscard]].
int tryDecode(const std::string &text);

// Clean: already annotated.
[[nodiscard]] bool parseHeader(const std::string &text);

// Clean: void return — nothing to discard.
void parseInto(const std::string &text, int &out);

// Clean: name does not match a status-returning prefix.
double interpolate(double a, double b, double t);

inline int
staticLocalCounter()
{
    // Positive: mutable static local in a header.
    static int calls = 0;
    return ++calls;
}

inline int
staticConstLookup(int i)
{
    // Clean: constant static local.
    static const int table[3] = {1, 2, 4};
    return table[i % 3];
}

} // namespace fixture

#endif // LINT3D_FIXTURE_SAFE_API_HH
