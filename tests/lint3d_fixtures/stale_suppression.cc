// lint3d fixture: lint-stale-suppression — a marker that waives a
// live finding (clean), a marker that waives nothing (finding), and
// a marker naming a rule that does not exist (finding).

#include <cstdlib>

namespace fixture_stale {

inline int
usedMarker()
{
    return rand(); // lint3d: det-rand-ok — live, stays clean
}

inline int
staleMarker()
{
    // lint3d: safe-memcpy-ok
    return 1; // nothing here trips safe-memcpy: the marker is stale
}

inline int
unknownRule()
{
    return 2; // lint3d: det-entropy-ok
}

} // namespace fixture_stale
