// lint3d fixture: concurrency rules — positives and the
// mutex-adjacency convention that keeps guarded globals clean.

#include <atomic>
#include <mutex>
#include <string>
#include <thread>

namespace fixture {

// Positive: mutable namespace-scope global, no protection in sight.
int g_unguarded_counter = 0;

// Positive: mutable global object.
std::string g_last_message;

// Clean: atomics are safe by construction.
std::atomic<int> g_atomic_counter{0};

// Clean: constants cannot race.
const int g_limit = 64;
constexpr double g_scale = 1.5;

// Clean: the adjacency convention — a mutex declared immediately
// before a global marks it guarded.
std::mutex g_table_mutex;
std::string g_guarded_table;

void
spawnsRawThread()
{
    // Positive: raw std::thread outside exec::.
    std::thread worker([] {});
    worker.join();
}

unsigned
queriesHardware()
{
    // Clean: std::thread:: nested-name uses do not spawn anything.
    return std::thread::hardware_concurrency();
}

} // namespace fixture
