// lint3d fixture: wire-schema-parity / wire-digest-parity — a
// write*Json / parse* pair with a key emitted but never parsed, a
// key parsed but never emitted, a key missing from the digest, and
// an exclude_keys escape ("threads", named in lint3d.toml). Fixtures
// are linted, never compiled, so the types are stand-ins.

namespace fixture_wire {

void
writeProbeJson(JsonWriter &w, const Probe &p)
{
    w.beginObject();
    w.key("alpha").value(p.alpha);      // clean: parsed + digested
    w.key("beta").value(p.beta);        // clean: parsed + digested
    w.key("threads").value(p.threads);  // clean: parsed, excluded
                                        // from the digest by config
    w.key("orphan").value(p.orphan);    // finding x2: never parsed,
                                        // never digested
    w.endObject();
}

bool
parseProbe(const JsonValue &v, Probe &out)
{
    JsonObjectReader r(v, "probe");
    r.readDouble("alpha", out.alpha);
    r.readDouble("beta", out.beta);
    r.readUnsigned("threads", out.threads);
    r.readDouble("ghost", out.ghost);   // finding: never emitted
    return true;
}

unsigned long
probeDigest(const Probe &p)
{
    return hashMix(p.alpha, p.beta);
}

} // namespace fixture_wire
