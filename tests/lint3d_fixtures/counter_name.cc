// lint3d fixture: obs-counter-name — a name outside [a-z0-9_.*]+, a
// histogram registered twice, a suppressed charset violation, and
// clean registrations.

namespace fixture_counters {

inline void
instrument(Registry &reg, Histogram *h, Histogram *h2)
{
    reg.registerHistogram("probe.latency_s", h);     // clean
    reg.registerHistogram("probe.latency_s", h2);    // finding:
                                                     // duplicate
    reg.registerHistogram("Probe.Retries", h2);      // finding:
                                                     // uppercase
    reg.set("probe.requests", 1.0);                  // clean
    reg.add("probe bad name", 2.0);                  // finding: space
    reg.tagGauge("probe.in_flight");                 // clean
    // lint3d: obs-counter-name-ok
    reg.setSeries("Waived.Name", 3.0);               // suppressed
}

} // namespace fixture_counters
