// lint3d --fix corpus: every finding in this file is mechanically
// fixable. tests/run_lint3d_fix.cmake copies it aside, runs --fix,
// diffs the result against fixme_fixed.cc, then runs --fix again to
// prove idempotence (second run: zero edits, zero findings).

#include <atomic>

namespace fixable {

std::atomic<int> hits{0};

inline int
convert(double d, const void *p)
{
    int a = (int)d;
    const unsigned char *b = (const unsigned char *)(p);
    hits.store(a);
    hits.fetch_add(1);
    return a + int(b[0]) + hits.load();
}

} // namespace fixable
