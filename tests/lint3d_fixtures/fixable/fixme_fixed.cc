// lint3d --fix corpus: every finding in this file is mechanically
// fixable. tests/run_lint3d_fix.cmake copies it aside, runs --fix,
// diffs the result against fixme_fixed.cc, then runs --fix again to
// prove idempotence (second run: zero edits, zero findings).

#include <atomic>

namespace fixable {

std::atomic<int> hits{0};

inline int
convert(double d, const void *p)
{
    int a = static_cast<int>(d);
    const unsigned char *b = static_cast<const unsigned char*>(p);
    hits.store(a, std::memory_order_seq_cst);
    hits.fetch_add(1, std::memory_order_seq_cst);
    return a + int(b[0]) + hits.load(std::memory_order_seq_cst);
}

} // namespace fixable
