// lint3d fixture: hyg-header-guard — the derived spelling for this
// path is STACK3D_GUARD_OK_HH; this header is clean.

#ifndef STACK3D_GUARD_OK_HH
#define STACK3D_GUARD_OK_HH

namespace fixture_guard {

constexpr int kAnswer = 42;

} // namespace fixture_guard

#endif // STACK3D_GUARD_OK_HH
