/**
 * @file
 * Equivalence guarantees of the optimized trace-replay data path:
 *
 *  - TraceEngine::run (event-driven issue, calendar-queue
 *    completions, SoA batched decode) is bit-identical to
 *    TraceEngine::runReference (the straightforward cycle-stepped
 *    engine kept as the oracle) for every model output;
 *  - runSharded produces the same merged result for every shard
 *    count whether shards execute serially or on a thread pool
 *    (bit-identical, not approximately equal);
 *  - the scalar / SWAR / SSE2 tag-search variants return the same
 *    way for every probe, across associativities 1-16 with partial
 *    sets, invalid ways, and signature collisions.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/random.hh"
#include "exec/pool.hh"
#include "mem/engine.hh"
#include "mem/hierarchy.hh"
#include "mem/tagsearch.hh"
#include "workloads/registry.hh"

using namespace stack3d;

namespace {

trace::TraceBuffer
makeTrace(const char *kernel_name, std::uint64_t records)
{
    auto kernel = workloads::makeRmsKernel(kernel_name);
    workloads::WorkloadConfig cfg;
    cfg.records_per_thread = records;
    return kernel->generate(cfg);
}

void
expectResultsIdentical(const mem::EngineResult &a,
                       const mem::EngineResult &b, const char *what)
{
    EXPECT_EQ(a.num_records, b.num_records) << what;
    EXPECT_EQ(a.total_cycles, b.total_cycles) << what;
    // Bitwise equality on the derived floats: the engines must
    // accumulate in the same order, not just land close.
    EXPECT_EQ(a.cpma, b.cpma) << what;
    EXPECT_EQ(a.avg_latency, b.avg_latency) << what;
    EXPECT_EQ(a.offdie_gbps, b.offdie_gbps) << what;
    EXPECT_EQ(a.bus_power_w, b.bus_power_w) << what;
    EXPECT_EQ(a.l1d_miss_rate, b.l1d_miss_rate) << what;
    EXPECT_EQ(a.llc_miss_rate, b.llc_miss_rate) << what;
    for (int i = 0; i < 4; ++i)
        EXPECT_EQ(a.latency_frac[i], b.latency_frac[i]) << what;
    EXPECT_EQ(a.hier.accesses, b.hier.accesses) << what;
    EXPECT_EQ(a.hier.offdie_fill_bytes, b.hier.offdie_fill_bytes)
        << what;
}

} // namespace

TEST(MemReplayDeterminism, FastEngineMatchesReference)
{
    const mem::StackOption options[] = {
        mem::StackOption::Baseline4MB,
        mem::StackOption::Sram12MB,
        mem::StackOption::Dram64MB,
    };
    for (const char *name : {"sMVM", "gauss", "conj"}) {
        trace::TraceBuffer buf = makeTrace(name, 20000);
        for (mem::StackOption opt : options) {
            mem::HierarchyParams hp = mem::makeHierarchyParams(opt);
            mem::MemoryHierarchy h_fast(hp);
            mem::MemoryHierarchy h_ref(hp);
            mem::TraceEngine eng;
            mem::EngineResult fast = eng.run(buf, h_fast);
            mem::EngineResult ref = eng.runReference(buf, h_ref);
            expectResultsIdentical(fast, ref, name);
        }
    }
}

TEST(MemReplayDeterminism, FastEngineMatchesReferenceAllTagModes)
{
    trace::TraceBuffer buf = makeTrace("sMVM", 20000);
    mem::HierarchyParams hp =
        mem::makeHierarchyParams(mem::StackOption::Dram32MB);
    mem::EngineResult first;
    int i = 0;
    for (mem::TagSearchMode mode :
         {mem::TagSearchMode::Scalar, mem::TagSearchMode::Swar,
          mem::TagSearchMode::Simd}) {
        mem::setTagSearchMode(mode);
        mem::MemoryHierarchy h_fast(hp);
        mem::MemoryHierarchy h_ref(hp);
        mem::TraceEngine eng;
        mem::EngineResult fast = eng.run(buf, h_fast);
        mem::EngineResult ref = eng.runReference(buf, h_ref);
        expectResultsIdentical(fast, ref, "tag mode");
        if (i++ == 0)
            first = fast;
        else
            expectResultsIdentical(fast, first, "across tag modes");
    }
    mem::clearTagSearchMode();
}

TEST(MemReplayDeterminism, ShardedBitIdenticalAcrossPools)
{
    trace::TraceBuffer buf = makeTrace("pcg", 20000);
    mem::HierarchyParams hp =
        mem::makeHierarchyParams(mem::StackOption::Sram12MB);
    mem::TraceEngine eng;
    for (unsigned shards : {1u, 2u, 8u}) {
        mem::ShardedReplayResult serial =
            eng.runSharded(buf, hp, shards, nullptr);
        exec::ThreadPool pool(4);
        mem::ShardedReplayResult threaded =
            eng.runSharded(buf, hp, shards, &pool);
        EXPECT_EQ(serial.cross_shard_deps, threaded.cross_shard_deps);
        ASSERT_EQ(serial.shards.size(), threaded.shards.size());
        for (unsigned s = 0; s < shards; ++s) {
            expectResultsIdentical(serial.shards[s],
                                   threaded.shards[s], "shard");
        }
        expectResultsIdentical(serial.merged, threaded.merged,
                               "merged");
        EXPECT_EQ(
            serial.merged.counters.value("replay.shards"),
            double(shards));
    }
}

TEST(MemReplayDeterminism, ShardOneMatchesUnsharded)
{
    // One shard is the whole trace: the decomposition must be a
    // no-op (no dropped dependencies, same result as run()).
    trace::TraceBuffer buf = makeTrace("gauss", 20000);
    mem::HierarchyParams hp =
        mem::makeHierarchyParams(mem::StackOption::Baseline4MB);
    mem::TraceEngine eng;
    mem::ShardedReplayResult one = eng.runSharded(buf, hp, 1, nullptr);
    EXPECT_EQ(one.cross_shard_deps, 0u);
    mem::MemoryHierarchy h(hp);
    mem::EngineResult whole = eng.run(buf, h);
    expectResultsIdentical(one.shards[0], whole, "one-shard");
}

TEST(TagSearch, VariantsAgreeAcrossAssociativities)
{
    Random rng(1234);
    for (unsigned assoc = 1; assoc <= 16; ++assoc) {
        const unsigned stride = mem::sigStride(assoc);
        std::vector<std::uint64_t> tags(assoc);
        std::vector<mem::TagSig> sigs(stride);
        for (int trial = 0; trial < 200; ++trial) {
            // Partial sets: every valid-mask density from empty to
            // full shows up across trials.
            std::uint32_t valid =
                std::uint32_t(rng.uniformInt(1u << assoc));
            for (unsigned w = 0; w < assoc; ++w) {
                // Small tag space forces duplicate tags and
                // signature collisions.
                tags[w] = rng.uniformInt(40);
                sigs[w] = mem::sigOf(tags[w]);
            }
            // Padding lanes carry a hostile signature: one that
            // matches the probe but belongs to no way.
            for (unsigned w = assoc; w < stride; ++w)
                sigs[w] = mem::sigOf(7);
            for (std::uint64_t probe = 0; probe < 45; ++probe) {
                int scalar = mem::findWayScalar(tags.data(), valid,
                                                assoc, probe);
                int swar =
                    mem::findWaySwar(sigs.data(), tags.data(), valid,
                                     assoc, probe);
                int simd =
                    mem::findWaySimd(sigs.data(), tags.data(), valid,
                                     assoc, probe);
                EXPECT_EQ(scalar, swar)
                    << "assoc " << assoc << " probe " << probe;
                EXPECT_EQ(scalar, simd)
                    << "assoc " << assoc << " probe " << probe;
            }
        }
    }
}

TEST(TagSearch, ModeOverride)
{
    mem::setTagSearchMode(mem::TagSearchMode::Scalar);
    EXPECT_EQ(mem::tagSearchMode(), mem::TagSearchMode::Scalar);
    mem::setTagSearchMode(mem::TagSearchMode::Swar);
    EXPECT_EQ(mem::tagSearchMode(), mem::TagSearchMode::Swar);
    mem::clearTagSearchMode();
    // Back to the process default (env-resolved); any value is
    // acceptable, it just must not be stuck on the override.
    (void)mem::tagSearchMode();
}
