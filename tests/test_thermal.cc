/**
 * @file
 * Tests for the thermal solver: power maps, mesh assembly, energy
 * conservation, analytic 1-D agreement, refinement convergence, and
 * the paper's stack geometries.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "thermal/mesh.hh"
#include "thermal/power_map.hh"
#include "thermal/render.hh"
#include "thermal/solver.hh"
#include "thermal/stacks.hh"

using namespace stack3d;
using namespace stack3d::thermal;

// ---------------------------------------------------------------------
// power maps
// ---------------------------------------------------------------------

TEST(PowerMap, UniformConservesTotal)
{
    PowerMap map(8, 8, 1e-2, 1e-2);
    map.addUniform(50.0);
    EXPECT_NEAR(map.totalWatts(), 50.0, 1e-9);
    EXPECT_NEAR(map.cell(3, 3), 50.0 / 64.0, 1e-12);
}

TEST(PowerMap, RectConservesTotal)
{
    PowerMap map(10, 10, 1e-2, 1e-2);
    // A rectangle that partially overlaps cells.
    map.addRect(1.4e-3, 2.1e-3, 6.3e-3, 7.7e-3, 30.0);
    EXPECT_NEAR(map.totalWatts(), 30.0, 1e-9);
}

TEST(PowerMap, RectOutsideCellsIsZero)
{
    PowerMap map(10, 10, 1e-2, 1e-2);
    map.addRect(2e-3, 2e-3, 4e-3, 4e-3, 10.0);
    EXPECT_DOUBLE_EQ(map.cell(9, 9), 0.0);
    EXPECT_GT(map.cell(2, 2), 0.0);
}

TEST(PowerMap, ScaleMultiplies)
{
    PowerMap map(4, 4, 1e-2, 1e-2);
    map.addUniform(10.0);
    map.scale(0.85);
    EXPECT_NEAR(map.totalWatts(), 8.5, 1e-9);
}

TEST(PowerMap, PeakDensity)
{
    PowerMap map(10, 10, 1e-2, 1e-2);
    map.addRect(0.0, 0.0, 1e-3, 1e-3, 5.0);   // one cell, 5 W/mm^2
    EXPECT_NEAR(map.peakDensity(), 5.0 / 1e-6, 1.0);
}

TEST(PowerMapDeathTest, DegenerateRectIsFatal)
{
    PowerMap map(4, 4, 1e-2, 1e-2);
    EXPECT_THROW(map.addRect(2e-3, 2e-3, 2e-3, 4e-3, 1.0),
                 std::runtime_error);
}

// ---------------------------------------------------------------------
// mesh assembly
// ---------------------------------------------------------------------

namespace {

StackGeometry
simpleSlab(double h_top = 1000.0, double h_bottom = 0.0)
{
    StackGeometry geom;
    geom.width = 1e-2;
    geom.height = 1e-2;
    geom.margin = 0.0;
    geom.h_top = h_top;
    geom.h_bottom = h_bottom;
    geom.ambient = 40.0;
    geom.layers.push_back({"top", 1e-3, 100.0, 2, false, 0.0});
    geom.layers.push_back({"active", 1e-4, 100.0, 1, true, 0.0});
    geom.layers.push_back({"bottom", 1e-3, 100.0, 2, false, 0.0});
    return geom;
}

} // anonymous namespace

TEST(Mesh, LayerIndicesAndZRanges)
{
    StackGeometry geom = simpleSlab();
    Mesh mesh(geom, 4, 4);
    EXPECT_EQ(geom.layerIndex("active"), 1u);
    EXPECT_THROW(geom.layerIndex("nope"), std::runtime_error);
    EXPECT_EQ(mesh.layerZBegin(0), 0u);
    EXPECT_EQ(mesh.layerZEnd(0), 2u);
    EXPECT_EQ(mesh.layerZBegin(1), 2u);
    EXPECT_EQ(mesh.nzTotal(), 5u);
    EXPECT_EQ(mesh.numCells(), 4u * 4 * 5);
}

TEST(Mesh, PowerOnNonActiveLayerIsFatal)
{
    StackGeometry geom = simpleSlab();
    Mesh mesh(geom, 4, 4);
    PowerMap map(4, 4, geom.width, geom.height);
    map.addUniform(10.0);
    EXPECT_THROW(mesh.setLayerPower(0, map), std::runtime_error);
}

TEST(Mesh, MismatchedPowerMapIsFatal)
{
    StackGeometry geom = simpleSlab();
    Mesh mesh(geom, 4, 4);
    PowerMap map(8, 8, geom.width, geom.height);
    map.addUniform(10.0);
    EXPECT_THROW(mesh.setLayerPower(1, map), std::runtime_error);
}

TEST(Mesh, BadLayerIsFatal)
{
    StackGeometry geom = simpleSlab();
    geom.layers[0].conductivity = 0.0;
    EXPECT_THROW(Mesh(geom, 4, 4), std::runtime_error);
}

TEST(Mesh, MarginExtendsDomain)
{
    StackGeometry geom = simpleSlab();
    geom.margin = 5e-3;   // 2 cells at die resolution 4 (2.5 mm/cell)
    Mesh mesh(geom, 4, 4);
    EXPECT_EQ(mesh.nx(), 8u);
    EXPECT_TRUE(mesh.inDieWindow(2, 2));
    EXPECT_FALSE(mesh.inDieWindow(0, 0));
}

// ---------------------------------------------------------------------
// physics
// ---------------------------------------------------------------------

TEST(Solver, MatchesSeriesResistanceAnalytically)
{
    // Uniform power Q over area A through a slab stack to a
    // convective boundary: T_active = Tamb + Q * (R_cond + R_conv),
    // with no lateral gradients (uniform everything).
    StackGeometry geom = simpleSlab(/*h_top=*/500.0);
    Mesh mesh(geom, 6, 6);
    PowerMap map(6, 6, geom.width, geom.height);
    const double q = 20.0;
    map.addUniform(q);
    mesh.setLayerPower(geom.layerIndex("active"), map);

    SolveInfo info;
    TemperatureField field = solveSteadyState(mesh, 1e-10, 50000, &info);
    ASSERT_TRUE(info.converged);

    double area = geom.width * geom.height;
    double r_conv = 1.0 / (500.0 * area);
    // Conduction: the top 1 mm slab at k=100 (power injects at the
    // top cell of the active layer; the half-cells discretization
    // reaches the top face through the full top layer).
    double r_cond = 1e-3 / (100.0 * area);
    double expect = 40.0 + q * (r_conv + r_cond);

    double active = field.layerPeak(geom.layerIndex("active"));
    // Tolerance covers the active layer half-cell discretization.
    EXPECT_NEAR(active, expect, 0.6);
    // No lateral gradient for uniform power.
    EXPECT_NEAR(field.layerPeak(1), field.layerMin(1), 1e-6);
}

TEST(Solver, EnergyBalanceAtBoundaries)
{
    // Steady state: total power in == total convective power out.
    StackGeometry geom = simpleSlab(800.0, 50.0);
    Mesh mesh(geom, 8, 8);
    PowerMap map(8, 8, geom.width, geom.height);
    map.addRect(2e-3, 2e-3, 8e-3, 8e-3, 35.0);
    mesh.setLayerPower(geom.layerIndex("active"), map);
    TemperatureField field = solveSteadyState(mesh, 1e-11, 50000);

    double cell_area = (geom.width / 8) * (geom.height / 8);
    double out = 0.0;
    for (unsigned j = 0; j < 8; ++j) {
        for (unsigned i = 0; i < 8; ++i) {
            out += 800.0 * cell_area *
                   (field.at(i, j, 0) - geom.ambient);
            out += 50.0 * cell_area *
                   (field.at(i, j, mesh.nzTotal() - 1) - geom.ambient);
        }
    }
    EXPECT_NEAR(out, 35.0, 0.05);
}

TEST(Solver, HotterWithMorePower)
{
    StackGeometry geom = simpleSlab();
    auto peak = [&](double watts) {
        Mesh mesh(geom, 6, 6);
        PowerMap map(6, 6, geom.width, geom.height);
        map.addUniform(watts);
        mesh.setLayerPower(geom.layerIndex("active"), map);
        return solveSteadyState(mesh).peak();
    };
    double p20 = peak(20.0);
    double p40 = peak(40.0);
    EXPECT_GT(p40, p20);
    // Linear system: doubling power doubles the rise.
    EXPECT_NEAR(p40 - 40.0, 2.0 * (p20 - 40.0), 0.05);
}

TEST(Solver, RefinementConvergence)
{
    // Peak temperature changes little under 2x lateral refinement.
    auto solve_at = [](unsigned n) {
        StackGeometry geom = makePlanarStack(1e-2, 1e-2);
        Mesh mesh(geom, n, n);
        PowerMap map(n, n, 1e-2, 1e-2);
        map.addUniform(40.0);
        map.addRect(4e-3, 4e-3, 6e-3, 6e-3, 20.0);
        mesh.setLayerPower(geom.layerIndex("active1"), map);
        return solveSteadyState(mesh, 1e-9).peak();
    };
    double coarse = solve_at(20);
    double fine = solve_at(40);
    EXPECT_NEAR(coarse, fine, std::abs(fine - 40.0) * 0.05 + 0.3);
}

// ---------------------------------------------------------------------
// paper stacks
// ---------------------------------------------------------------------

TEST(Stacks, PlanarLayersPresent)
{
    StackGeometry geom = makePlanarStack(13.5e-3, 10.6e-3);
    for (const char *name :
         {"heat_sink", "ihs", "tim", "bulk_si1", "active1", "metal1",
          "package", "socket", "board"})
        EXPECT_NO_THROW(geom.layerIndex(name)) << name;
    EXPECT_THROW(geom.layerIndex("bond"), std::runtime_error);
    EXPECT_GT(geom.totalThickness(), 10e-3);
}

TEST(Stacks, TwoDieStackHasBondAndSecondDie)
{
    StackGeometry geom = makeTwoDieStack(
        13.5e-3, 10.6e-3, StackedDieType::Dram);
    EXPECT_NO_THROW(geom.layerIndex("bond"));
    EXPECT_NO_THROW(geom.layerIndex("active2"));
    EXPECT_NO_THROW(geom.layerIndex("bulk_si2"));
    // DRAM second die uses the thin Al metal stack.
    unsigned m2 = geom.layerIndex("metal2");
    EXPECT_DOUBLE_EQ(geom.layers[m2].thickness,
                     table2::al_metal_thickness);
    EXPECT_DOUBLE_EQ(geom.layers[m2].conductivity,
                     table2::al_metal_conductivity);
}

TEST(Stacks, LogicSecondDieUsesCuMetal)
{
    StackGeometry geom = makeTwoDieStack(
        10e-3, 10e-3, StackedDieType::LogicSram);
    unsigned m2 = geom.layerIndex("metal2");
    EXPECT_DOUBLE_EQ(geom.layers[m2].thickness,
                     table2::cu_metal_thickness);
}

TEST(Stacks, OverridesApply)
{
    StackOverrides ovr;
    ovr.cu_metal_conductivity = 3.0;
    ovr.bond_conductivity = 7.0;
    StackGeometry geom = makeTwoDieStack(
        10e-3, 10e-3, StackedDieType::LogicSram, PackageModel{}, ovr);
    EXPECT_DOUBLE_EQ(
        geom.layers[geom.layerIndex("metal1")].conductivity, 3.0);
    EXPECT_DOUBLE_EQ(
        geom.layers[geom.layerIndex("bond")].conductivity, 7.0);
}

TEST(Stacks, Table2Constants)
{
    EXPECT_DOUBLE_EQ(table2::si1_thickness, 750e-6);
    EXPECT_DOUBLE_EQ(table2::si2_thickness, 20e-6);
    EXPECT_DOUBLE_EQ(table2::si_conductivity, 120.0);
    EXPECT_DOUBLE_EQ(table2::cu_metal_conductivity, 12.0);
    EXPECT_DOUBLE_EQ(table2::bond_conductivity, 60.0);
    EXPECT_DOUBLE_EQ(table2::ambient, 40.0);
}

TEST(Stacks, SecondDieRaisesPeakForSamePower)
{
    // The same total power, but half of it on a second die farther
    // from the heat sink, runs hotter than all of it planar.
    auto solve = [](bool stacked) {
        StackGeometry geom =
            stacked ? makeTwoDieStack(1e-2, 1e-2,
                                      StackedDieType::LogicSram)
                    : makePlanarStack(1e-2, 1e-2);
        Mesh mesh(geom, 16, 16);
        PowerMap map(16, 16, 1e-2, 1e-2);
        map.addUniform(stacked ? 40.0 : 80.0);
        mesh.setLayerPower(geom.layerIndex("active1"), map);
        if (stacked) {
            PowerMap map2(16, 16, 1e-2, 1e-2);
            map2.addUniform(40.0);
            mesh.setLayerPower(geom.layerIndex("active2"), map2);
        }
        return solveSteadyState(mesh).peak();
    };
    EXPECT_GT(solve(true), solve(false) - 0.5);
}

// ---------------------------------------------------------------------
// rendering
// ---------------------------------------------------------------------

TEST(Render, ProducesMapWithScale)
{
    StackGeometry geom = simpleSlab();
    Mesh mesh(geom, 8, 8);
    PowerMap map(8, 8, geom.width, geom.height);
    map.addRect(0.0, 0.0, 5e-3, 5e-3, 10.0);
    mesh.setLayerPower(geom.layerIndex("active"), map);
    TemperatureField field = solveSteadyState(mesh);

    std::ostringstream os;
    renderLayerMap(os, field, 1);
    EXPECT_NE(os.str().find("scale:"), std::string::npos);
    EXPECT_GT(os.str().size(), 100u);

    std::ostringstream os2;
    renderPowerMap(os2, map);
    EXPECT_NE(os2.str().find("scale:"), std::string::npos);
}

// ---------------------------------------------------------------------
// transient solver (extension beyond the paper's steady state)
// ---------------------------------------------------------------------

#include "thermal/transient.hh"

TEST(Transient, ApproachesSteadyState)
{
    StackGeometry geom = simpleSlab(800.0);
    Mesh mesh(geom, 6, 6);
    PowerMap map(6, 6, geom.width, geom.height);
    map.addUniform(30.0);
    mesh.setLayerPower(geom.layerIndex("active"), map);

    double steady = solveSteadyState(mesh, 1e-10).peak();
    TransientResult r = solveTransient(mesh, 60.0, 0.5);
    // Within ~0.5% of the full rise after several time constants.
    EXPECT_NEAR(r.samples.back().peak_c, steady,
                (steady - 40.0) * 0.005);
    EXPECT_EQ(r.samples.size(), 120u);
}

TEST(Transient, PeaksRiseMonotonicallyFromAmbient)
{
    StackGeometry geom = simpleSlab(800.0);
    Mesh mesh(geom, 6, 6);
    PowerMap map(6, 6, geom.width, geom.height);
    map.addUniform(30.0);
    mesh.setLayerPower(geom.layerIndex("active"), map);

    TransientResult r = solveTransient(mesh, 5.0, 0.25);
    double prev = geom.ambient;
    for (const auto &s : r.samples) {
        EXPECT_GE(s.peak_c, prev - 1e-9) << "t=" << s.time_s;
        prev = s.peak_c;
    }
}

TEST(Transient, TimeConstantWithinHorizon)
{
    StackGeometry geom = simpleSlab(800.0);
    Mesh mesh(geom, 6, 6);
    PowerMap map(6, 6, geom.width, geom.height);
    map.addUniform(30.0);
    mesh.setLayerPower(geom.layerIndex("active"), map);

    TransientResult r = solveTransient(mesh, 30.0, 0.25);
    EXPECT_GT(r.time_constant_s, 0.0);
    EXPECT_LT(r.time_constant_s, 30.0);
}

TEST(Transient, LargerCapacityIsSlower)
{
    auto tau = [](double vhc) {
        StackGeometry geom = simpleSlab(800.0);
        for (auto &layer : geom.layers)
            layer.volumetric_heat_capacity = vhc;
        Mesh mesh(geom, 4, 4);
        PowerMap map(4, 4, geom.width, geom.height);
        map.addUniform(30.0);
        mesh.setLayerPower(geom.layerIndex("active"), map);
        return solveTransient(mesh, 60.0, 0.25).time_constant_s;
    };
    EXPECT_GT(tau(3.2e6), tau(1.6e6) * 1.5);
}

TEST(Transient, StepSizeInsensitive)
{
    // Implicit Euler: halving dt should barely move the answer.
    StackGeometry geom = simpleSlab(800.0);
    Mesh mesh(geom, 4, 4);
    PowerMap map(4, 4, geom.width, geom.height);
    map.addUniform(30.0);
    mesh.setLayerPower(geom.layerIndex("active"), map);

    double p_coarse = solveTransient(mesh, 10.0, 0.5).samples.back()
                          .peak_c;
    double p_fine = solveTransient(mesh, 10.0, 0.125).samples.back()
                        .peak_c;
    // Backward Euler is first order: ~1-2% of the rise at dt=0.5 s.
    EXPECT_NEAR(p_coarse, p_fine, (p_fine - 40.0) * 0.02);
}

TEST(TransientDeathTest, BadStepIsFatal)
{
    StackGeometry geom = simpleSlab();
    Mesh mesh(geom, 4, 4);
    EXPECT_DEATH(solveTransient(mesh, 1.0, 0.0), "");
}

// ---------------------------------------------------------------------
// multi-die stacks (extension beyond the paper's two dies)
// ---------------------------------------------------------------------

TEST(MultiDie, LayersNamedAndOrdered)
{
    std::vector<StackedDieType> uppers{StackedDieType::Dram,
                                       StackedDieType::Dram,
                                       StackedDieType::LogicSram};
    StackGeometry geom = makeMultiDieStack(1e-2, 1e-2, uppers);
    for (const char *name : {"active1", "active2", "active3",
                             "active4", "bond1", "bond2", "bond3"})
        EXPECT_NO_THROW(geom.layerIndex(name)) << name;
    // Die #4 is LogicSram: Cu metal.
    unsigned m4 = geom.layerIndex("metal4");
    EXPECT_DOUBLE_EQ(geom.layers[m4].thickness,
                     table2::cu_metal_thickness);
}

TEST(MultiDie, EmptyUpperListIsPlanar)
{
    StackGeometry geom = makeMultiDieStack(1e-2, 1e-2, {});
    EXPECT_THROW(geom.layerIndex("bond1"), std::runtime_error);
    EXPECT_NO_THROW(geom.layerIndex("active1"));
}

TEST(MultiDie, NoneDieIsFatal)
{
    EXPECT_THROW(
        makeMultiDieStack(1e-2, 1e-2, {StackedDieType::None}),
        std::runtime_error);
}

TEST(MultiDie, FartherDiesRunHotterForSamePower)
{
    // The same uniform power on each of three stacked dies: dies
    // farther from the heat sink peak hotter.
    std::vector<StackedDieType> uppers{StackedDieType::Dram,
                                       StackedDieType::Dram};
    StackGeometry geom = makeMultiDieStack(1e-2, 1e-2, uppers);
    Mesh mesh(geom, 16, 16);
    for (const char *name : {"active1", "active2", "active3"}) {
        PowerMap map(16, 16, 1e-2, 1e-2);
        map.addUniform(20.0);
        mesh.setLayerPower(geom.layerIndex(name), map);
    }
    TemperatureField field = solveSteadyState(mesh);
    double t1 = field.layerPeak(geom.layerIndex("active1"));
    double t3 = field.layerPeak(geom.layerIndex("active3"));
    EXPECT_GE(t3, t1);
}

TEST(MultiDie, TwoDieSpecialCaseAgrees)
{
    // makeMultiDieStack with one Dram upper die should match
    // makeTwoDieStack thermally.
    StackGeometry a =
        makeTwoDieStack(1e-2, 1e-2, StackedDieType::Dram);
    StackGeometry b =
        makeMultiDieStack(1e-2, 1e-2, {StackedDieType::Dram});
    auto solve = [](const StackGeometry &geom) {
        Mesh mesh(geom, 16, 16);
        PowerMap map(16, 16, 1e-2, 1e-2);
        map.addUniform(60.0);
        mesh.setLayerPower(geom.layerIndex("active1"), map);
        PowerMap map2(16, 16, 1e-2, 1e-2);
        map2.addUniform(4.0);
        mesh.setLayerPower(geom.layerIndex("active2"), map2);
        return solveSteadyState(mesh).peak();
    };
    EXPECT_NEAR(solve(a), solve(b), 0.05);
}

// ---------------------------------------------------------------------
// multigrid preconditioner, incremental reassembly, warm starts
// ---------------------------------------------------------------------

namespace {

/** A small two-die stack with power on both active layers. */
Mesh
smallTwoDieMesh(const StackGeometry &geom, unsigned die_n = 20)
{
    Mesh mesh(geom, die_n, die_n);
    PowerMap map1(die_n, die_n, 1e-2, 1e-2);
    map1.addUniform(60.0);
    mesh.setLayerPower(geom.layerIndex("active1"), map1);
    PowerMap map2(die_n, die_n, 1e-2, 1e-2);
    map2.addUniform(4.0);
    mesh.setLayerPower(geom.layerIndex("active2"), map2);
    return mesh;
}

} // anonymous namespace

TEST(Multigrid, AgreesWithJacobiOnTwoDieStack)
{
    StackGeometry geom =
        makeTwoDieStack(1e-2, 1e-2, StackedDieType::Dram);
    Mesh mesh = smallTwoDieMesh(geom);

    SolverOptions jac;
    jac.precond = Precond::Jacobi;
    SolveInfo jac_info;
    TemperatureField fj = solveSteadyState(mesh, jac, &jac_info);

    SolverOptions mg;
    mg.precond = Precond::Multigrid;
    SolveInfo mg_info;
    TemperatureField fm = solveSteadyState(mesh, mg, &mg_info);

    EXPECT_TRUE(jac_info.converged);
    EXPECT_TRUE(mg_info.converged);
    EXPECT_GT(mg_info.v_cycles, 0u);
    EXPECT_GT(mg_info.smoother_sweeps, 0u);
    EXPECT_EQ(jac_info.v_cycles, 0u);
    // Both converged to relative residual 1e-8; the fields agree to
    // a comfortable multiple of that.
    EXPECT_NEAR(fm.peak(), fj.peak(), 1e-5);
    EXPECT_NEAR(fm.minimum(), fj.minimum(), 1e-5);
}

TEST(Multigrid, AgreesWithJacobiOnPlanarStack)
{
    StackGeometry geom = makePlanarStack(1e-2, 1e-2);
    Mesh mesh(geom, 20, 20);
    PowerMap map(20, 20, 1e-2, 1e-2);
    map.addUniform(80.0);
    mesh.setLayerPower(geom.layerIndex("active1"), map);

    SolverOptions jac;
    jac.precond = Precond::Jacobi;
    TemperatureField fj = solveSteadyState(mesh, jac);

    SolverOptions mg;
    mg.precond = Precond::Multigrid;
    TemperatureField fm = solveSteadyState(mesh, mg);

    EXPECT_NEAR(fm.peak(), fj.peak(), 1e-5);
    EXPECT_NEAR(fm.minimum(), fj.minimum(), 1e-5);
}

TEST(Multigrid, CutsIterationCountSubstantially)
{
    StackGeometry geom =
        makeTwoDieStack(1e-2, 1e-2, StackedDieType::Dram);
    Mesh mesh = smallTwoDieMesh(geom, 24);

    SolverOptions jac;
    jac.precond = Precond::Jacobi;
    SolveInfo ji;
    solveSteadyState(mesh, jac, &ji);

    SolverOptions mg;
    mg.precond = Precond::Multigrid;
    SolveInfo mi;
    solveSteadyState(mesh, mg, &mi);

    // The whole point of the V-cycle: at least 4x fewer iterations.
    EXPECT_LT(mi.iterations * 4, ji.iterations);
}

TEST(Mesh, IncrementalUpdateMatchesFreshAssembly)
{
    StackOverrides base_ovr;   // bond = 60 by default
    StackGeometry geom_a = makeTwoDieStack(
        1e-2, 1e-2, StackedDieType::LogicSram, {}, base_ovr);

    StackOverrides swept_ovr;
    swept_ovr.bond_conductivity = 7.0;
    StackGeometry geom_b = makeTwoDieStack(
        1e-2, 1e-2, StackedDieType::LogicSram, {}, swept_ovr);

    Mesh updated = smallTwoDieMesh(geom_a);
    std::size_t faces = updated.updateLayerConductivity(
        geom_a.layerIndex("bond"), 7.0);
    EXPECT_GT(faces, 0u);

    Mesh fresh = smallTwoDieMesh(geom_b);

    // The fast path must be indistinguishable from a fresh assembly,
    // bit for bit.
    ASSERT_EQ(updated.numCells(), fresh.numCells());
    for (std::size_t c = 0; c < fresh.numCells(); ++c) {
        EXPECT_EQ(updated.faceGx()[c], fresh.faceGx()[c]) << c;
        EXPECT_EQ(updated.faceGy()[c], fresh.faceGy()[c]) << c;
        EXPECT_EQ(updated.faceGz()[c], fresh.faceGz()[c]) << c;
        EXPECT_EQ(updated.diagonal()[c], fresh.diagonal()[c]) << c;
        EXPECT_EQ(updated.rhs()[c], fresh.rhs()[c]) << c;
    }

    // No-op updates report zero recomputed faces.
    EXPECT_EQ(updated.updateLayerConductivity(
                  geom_a.layerIndex("bond"), 7.0),
              0u);
}

TEST(Solver, WarmStartAgreesAndConvergesFaster)
{
    StackGeometry geom = makeTwoDieStack(
        1e-2, 1e-2, StackedDieType::LogicSram);
    Mesh mesh = smallTwoDieMesh(geom);

    SolveInfo cold0;
    TemperatureField first =
        solveSteadyState(mesh, SolverOptions{}, &cold0);

    // Nudge the bond layer and re-solve cold vs. warm.
    mesh.updateLayerConductivity(geom.layerIndex("bond"), 48.0);

    SolveInfo cold;
    TemperatureField f_cold =
        solveSteadyState(mesh, SolverOptions{}, &cold);
    EXPECT_FALSE(cold.warm_start_used);

    SolverOptions warm;
    warm.warm_start = &first.raw();
    SolveInfo wi;
    TemperatureField f_warm = solveSteadyState(mesh, warm, &wi);
    EXPECT_TRUE(wi.warm_start_used);
    EXPECT_LE(wi.iterations, cold.iterations);
    EXPECT_NEAR(f_warm.peak(), f_cold.peak(), 1e-5);

    // A size-mismatched guess is ignored, not an error.
    std::vector<double> wrong(3, 40.0);
    SolverOptions bad;
    bad.warm_start = &wrong;
    SolveInfo bi;
    solveSteadyState(mesh, bad, &bi);
    EXPECT_FALSE(bi.warm_start_used);
}

TEST(TemperatureField, LayerQueriesScanEveryPlane)
{
    // A layer two planes thick whose hottest cell sits on the
    // *second* plane, at a different (i, j) than the first plane's
    // maximum: layerPeakCell must find it.
    StackGeometry geom = simpleSlab();
    Mesh mesh(geom, 4, 4);   // layer 0 spans z = 0..1
    std::vector<double> temps(mesh.numCells(), 40.0);
    temps[mesh.cellIndex(1, 1, 0)] = 50.0;   // first-plane max
    temps[mesh.cellIndex(3, 2, 1)] = 60.0;   // layer max, second plane
    temps[mesh.cellIndex(0, 0, 1)] = 30.0;   // layer min
    TemperatureField field(mesh, std::move(temps));

    EXPECT_DOUBLE_EQ(field.layerPeak(0), 60.0);
    EXPECT_DOUBLE_EQ(field.layerMin(0), 30.0);
    auto cell = field.layerPeakCell(0);
    EXPECT_EQ(cell.first, 3u);
    EXPECT_EQ(cell.second, 2u);
}
