# Layering gate: scanning only the layering fixture dirs must exit 1
# with an arch-layering finding on the deliberate back-edge, and the
# legal edges (self layer, declared dep) must produce nothing else.
#
#   cmake -DLINT3D=<exe> -DFIXTURES=<dir> -P run_lint3d_layering.cmake

foreach(var LINT3D FIXTURES)
    if(NOT DEFINED ${var})
        message(FATAL_ERROR "run_lint3d_layering.cmake: -D${var}=... is required")
    endif()
endforeach()

execute_process(
    COMMAND "${LINT3D}" --root "${FIXTURES}"
            --config "${FIXTURES}/lint3d.toml" lowmod highmod
    OUTPUT_VARIABLE out
    ERROR_QUIET
    RESULT_VARIABLE rc)
if(NOT rc EQUAL 1)
    message(FATAL_ERROR
        "lint3d exited with ${rc} on the layering fixture (expected "
        "1: the back-edge must fail the gate)\n${out}")
endif()
if(NOT out MATCHES "lowmod/bad_backedge\\.cc:5: error: \\[arch-layering\\]")
    message(FATAL_ERROR
        "expected the arch-layering finding on lowmod/bad_backedge.cc:5; "
        "got:\n${out}")
endif()
if(out MATCHES "impl\\.cc")
    message(FATAL_ERROR
        "legal layer edges in highmod/impl.cc were flagged:\n${out}")
endif()
