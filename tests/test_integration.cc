/**
 * @file
 * Cross-module integration tests: traces through the hierarchy with
 * consistent accounting, capacity sensitivity end to end, ablations
 * (prefetcher, dependencies), and floorplan-to-thermal coupling.
 */

#include <gtest/gtest.h>

#include <filesystem>

#include "common/random.hh"
#include "core/memory_study.hh"
#include "core/thermal_study.hh"
#include "trace/file.hh"
#include "floorplan/reference.hh"
#include "mem/engine.hh"
#include "workloads/registry.hh"

using namespace stack3d;

namespace {

trace::TraceBuffer
kernelTrace(const char *name, std::uint64_t records_per_thread,
            double scale = 1.0)
{
    workloads::WorkloadConfig cfg;
    cfg.records_per_thread = records_per_thread;
    cfg.scale = scale;
    return workloads::makeRmsKernel(name)->generate(cfg);
}

} // anonymous namespace

TEST(Integration, HierarchyCountersConsistent)
{
    trace::TraceBuffer buf = kernelTrace("sMVM", 50000, 0.2);
    mem::MemoryHierarchy hier(
        mem::makeHierarchyParams(mem::StackOption::Baseline4MB));
    mem::TraceEngine engine;
    mem::EngineResult res = engine.run(buf, hier);

    // Every record reached the hierarchy exactly once.
    EXPECT_EQ(res.hier.accesses, buf.size());
    EXPECT_EQ(res.hier.loads + res.hier.stores + res.hier.ifetches,
              buf.size());
    // Off-die accounting matches the bus.
    EXPECT_EQ(hier.offDieBytes(), hier.bus().totalBytes());
    // L1 hits + misses == accesses + prefetch installs.
    std::uint64_t l1_total = 0;
    for (unsigned c = 0; c < 2; ++c) {
        l1_total += hier.l1d(c).counters().hits +
                    hier.l1d(c).counters().misses;
    }
    EXPECT_EQ(l1_total, res.hier.accesses + res.hier.prefetches);
}

TEST(Integration, CapacityCurveEndToEnd)
{
    // gauss at full scale: thrashes 4 MB, fits 12/32/64.
    trace::TraceBuffer buf = kernelTrace("gauss", 800000);
    double cpma[4];
    int i = 0;
    for (auto opt : core::kStackOptions) {
        mem::MemoryHierarchy hier(mem::makeHierarchyParams(opt));
        mem::TraceEngine engine;
        cpma[i++] = engine.run(buf, hier).cpma;
    }
    EXPECT_GT(cpma[0], 2.0 * cpma[1]);
    EXPECT_NEAR(cpma[1], cpma[2], cpma[1] * 0.3);
    EXPECT_NEAR(cpma[2], cpma[3], cpma[2] * 0.15);
}

TEST(Integration, PrefetcherAblation)
{
    // A dependency-chained sequential sweep (each access produces
    // the next one's value, as in the RMS kernels' read-modify-write
    // vector updates): without the prefetcher every fourth access
    // stalls the chain for a full memory round trip; with it the
    // stream is in the L1 before the chain arrives.
    trace::ThreadTracer tracer(0);
    trace::RecordId prev = trace::kNone;
    for (int i = 0; i < 60000; ++i)
        prev = tracer.load(0x1000000 + Addr(i) * 16, 0x1, prev, 16);
    trace::TraceBuffer buf(tracer.take());

    auto run = [&](bool prefetch) {
        mem::HierarchyParams p =
            mem::makeHierarchyParams(mem::StackOption::Baseline4MB);
        p.prefetcher.enable = prefetch;
        mem::MemoryHierarchy hier(p);
        mem::TraceEngine engine;
        return engine.run(buf, hier).cpma;
    };
    EXPECT_GT(run(false), run(true) * 2.0);
}

TEST(Integration, DependencyAblation)
{
    // Ignoring trace dependencies can only speed things up
    // (infinite MLP).
    trace::TraceBuffer buf = kernelTrace("sMVM", 100000, 0.3);
    auto run = [&](bool honor) {
        mem::HierarchyParams p =
            mem::makeHierarchyParams(mem::StackOption::Baseline4MB);
        mem::MemoryHierarchy hier(p);
        mem::EngineParams ep;
        ep.honor_dependencies = honor;
        return mem::TraceEngine(ep).run(buf, hier).total_cycles;
    };
    EXPECT_LE(run(false), run(true));
}

TEST(Integration, SectoredVsNonSectoredDramCache)
{
    // Random sparse touches, one line per page: a non-sectored
    // cache (sector == page) drags in 512 B per miss where the
    // sectored design moves only the demanded 64 B — the reason the
    // paper's DRAM cache is sectored.
    trace::ThreadTracer tracer(0);
    Random rng(21);
    for (int i = 0; i < 40000; ++i) {
        Addr addr = rng.uniformInt(512u << 20) & ~Addr(63);
        tracer.load(addr, 0x1);
    }
    trace::TraceBuffer buf(tracer.take());

    auto offdie = [&](std::uint32_t sector_bytes) {
        mem::HierarchyParams p =
            mem::makeHierarchyParams(mem::StackOption::Dram32MB);
        p.dram_cache.sector_bytes = sector_bytes;
        p.prefetcher.enable = false;
        mem::MemoryHierarchy hier(p);
        mem::TraceEngine engine;
        engine.run(buf, hier);
        return hier.offDieBytes();
    };
    EXPECT_GT(offdie(512), offdie(64) * 4);
}

TEST(Integration, FloorplanPowersThermalSolve)
{
    // The Core 2 Duo floorplan's hottest block should be where the
    // thermal field peaks (FP unit area of one of the cores).
    auto fp = floorplan::makeCore2Duo();
    core::ThermalSolution solution;
    core::solveFloorplanThermals(fp, thermal::StackedDieType::None, {},
                                 {}, &solution, 27, 21);
    ASSERT_TRUE(solution.field.has_value());
    const auto &field = *solution.field;
    const auto &mesh = *solution.mesh;

    unsigned layer = mesh.geometry().layerIndex("active1");
    auto [pi, pj] = field.layerPeakCell(layer);
    // Map the peak cell back to die coordinates.
    double dx = fp.width() / mesh.dieNx();
    double dy = fp.height() / mesh.dieNy();
    double px = (double(pi) - mesh.dieI0() + 0.5) * dx;
    double py = (double(pj) - mesh.dieJ0() + 0.5) * dy;

    // Inside (or adjacent to) one of the two hot clusters.
    const auto &fp0 = fp.block("core0.fp");
    const auto &fp1 = fp.block("core1.fp");
    double d0 = std::abs(px - fp0.centerX()) +
                std::abs(py - fp0.centerY());
    double d1 = std::abs(px - fp1.centerX()) +
                std::abs(py - fp1.centerY());
    EXPECT_LT(std::min(d0, d1), 3e-3);
}

TEST(Integration, StackedCacheDieIsCoolerThanCores)
{
    // In the 12 MB option the cache-only die has uniform low power:
    // its peak is well below the processor die's.
    using namespace floorplan;
    Floorplan base = makeCore2Duo();
    Floorplan sram =
        makeCacheDie(base, "sram8m", budgets::stacked_sram_8mb);
    Floorplan combined = stackFloorplans(base, sram, "c2_12m");
    core::ThermalPoint pt = core::solveFloorplanThermals(
        combined, thermal::StackedDieType::LogicSram, {}, {}, nullptr,
        27, 21);
    EXPECT_GT(pt.die1_peak_c, pt.die2_peak_c - 3.0);
    EXPECT_GT(pt.peak_c, 80.0);
}

TEST(Integration, TraceFileRoundTripThroughEngine)
{
    // A trace written to disk and read back produces identical
    // simulation results.
    trace::TraceBuffer buf = kernelTrace("conj", 30000, 0.2);
    std::string path =
        (std::filesystem::temp_directory_path() / "s3d_rt.bin")
            .string();
    trace::writeTraceFile(path, buf);
    trace::TraceBuffer loaded = trace::readTraceFile(path);

    auto run = [](const trace::TraceBuffer &b) {
        mem::MemoryHierarchy hier(
            mem::makeHierarchyParams(mem::StackOption::Dram32MB));
        mem::TraceEngine engine;
        return engine.run(b, hier).total_cycles;
    };
    EXPECT_EQ(run(buf), run(loaded));
    std::remove(path.c_str());
}
