/**
 * @file
 * Cross-cutting property tests: invariants that must hold across
 * parameter sweeps rather than at hand-picked points — thermal
 * linearity and superposition, engine monotonicities, pipeline
 * latency monotonicity, and workload/trace structural properties.
 */

#include <gtest/gtest.h>

#include "cpu/pipeline.hh"
#include "mem/engine.hh"
#include "power/scaling.hh"
#include "thermal/solver.hh"
#include "thermal/stacks.hh"
#include "workloads/registry.hh"

using namespace stack3d;

// ---------------------------------------------------------------------
// thermal properties
// ---------------------------------------------------------------------

namespace {

thermal::StackGeometry
testStack()
{
    return thermal::makeTwoDieStack(1e-2, 1e-2,
                                    thermal::StackedDieType::Dram);
}

double
peakWith(const thermal::StackGeometry &geom, double w1, double w2)
{
    thermal::Mesh mesh(geom, 14, 14);
    if (w1 > 0.0) {
        thermal::PowerMap map(14, 14, 1e-2, 1e-2);
        map.addRect(2e-3, 2e-3, 6e-3, 6e-3, w1);
        mesh.setLayerPower(geom.layerIndex("active1"), map);
    }
    if (w2 > 0.0) {
        thermal::PowerMap map(14, 14, 1e-2, 1e-2);
        map.addUniform(w2);
        mesh.setLayerPower(geom.layerIndex("active2"), map);
    }
    return thermal::solveSteadyState(mesh, 1e-10).peak();
}

} // anonymous namespace

class ThermalLinearityTest : public ::testing::TestWithParam<double>
{
};

TEST_P(ThermalLinearityTest, RiseScalesLinearlyWithPower)
{
    thermal::StackGeometry geom = testStack();
    double w = GetParam();
    double rise_1x = peakWith(geom, w, 0.0) - 40.0;
    double rise_3x = peakWith(geom, 3.0 * w, 0.0) - 40.0;
    EXPECT_NEAR(rise_3x, 3.0 * rise_1x, rise_1x * 0.01 + 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Powers, ThermalLinearityTest,
                         ::testing::Values(5.0, 20.0, 60.0, 150.0));

TEST(ThermalProperties, AmbientShiftIsPureOffset)
{
    thermal::StackGeometry geom = testStack();
    thermal::StackGeometry hot = geom;
    hot.ambient = 55.0;
    double base = peakWith(geom, 40.0, 4.0);
    double shifted = peakWith(hot, 40.0, 4.0);
    EXPECT_NEAR(shifted - base, 15.0, 0.02);
}

TEST(ThermalProperties, SuperpositionOfTwoDies)
{
    // Linear conduction: the combined rise equals the sum of each
    // die's rise in isolation.
    thermal::StackGeometry geom = testStack();
    thermal::Mesh m_both(geom, 14, 14);
    thermal::Mesh m_die1(geom, 14, 14);
    thermal::Mesh m_die2(geom, 14, 14);

    thermal::PowerMap p1(14, 14, 1e-2, 1e-2);
    p1.addRect(2e-3, 2e-3, 6e-3, 6e-3, 40.0);
    thermal::PowerMap p2(14, 14, 1e-2, 1e-2);
    p2.addUniform(6.0);

    m_both.setLayerPower(geom.layerIndex("active1"), p1);
    m_both.setLayerPower(geom.layerIndex("active2"), p2);
    m_die1.setLayerPower(geom.layerIndex("active1"), p1);
    m_die2.setLayerPower(geom.layerIndex("active2"), p2);

    auto f_both = thermal::solveSteadyState(m_both, 1e-11);
    auto f_1 = thermal::solveSteadyState(m_die1, 1e-11);
    auto f_2 = thermal::solveSteadyState(m_die2, 1e-11);

    // Check superposition at several probe cells.
    for (unsigned z : {2u, 8u}) {
        for (unsigned i : {3u, 7u, 11u}) {
            double combined = f_both.at(i, i, z) - 40.0;
            double summed = (f_1.at(i, i, z) - 40.0) +
                            (f_2.at(i, i, z) - 40.0);
            EXPECT_NEAR(combined, summed,
                        std::abs(summed) * 0.01 + 0.02);
        }
    }
}

TEST(ThermalProperties, BetterCoolingNeverHurts)
{
    thermal::PackageModel weak;
    weak.h_top = 3000.0;
    thermal::PackageModel strong;
    strong.h_top = 12000.0;
    auto geom_w = thermal::makeTwoDieStack(
        1e-2, 1e-2, thermal::StackedDieType::Dram, weak);
    auto geom_s = thermal::makeTwoDieStack(
        1e-2, 1e-2, thermal::StackedDieType::Dram, strong);
    EXPECT_GT(peakWith(geom_w, 50.0, 5.0), peakWith(geom_s, 50.0, 5.0));
}

// ---------------------------------------------------------------------
// engine properties
// ---------------------------------------------------------------------

namespace {

trace::TraceBuffer
mixedTrace(std::uint64_t seed, std::size_t n = 30000)
{
    trace::ThreadTracer t0(0), t1(1);
    Random rng(seed);
    trace::RecordId prev0 = trace::kNone;
    for (std::size_t i = 0; i < n / 2; ++i) {
        Addr a0 = rng.uniformInt(24u << 20) & ~Addr(7);
        prev0 = rng.chance(0.25) ? t0.load(a0, 0x1, prev0)
                                 : t0.load(a0, 0x1);
        Addr a1 = rng.uniformInt(24u << 20) & ~Addr(7);
        if (rng.chance(0.3))
            t1.store(a1, 0x2);
        else
            t1.load(a1, 0x2);
    }
    std::vector<std::vector<trace::TraceRecord>> threads;
    threads.push_back(t0.take());
    threads.push_back(t1.take());
    return trace::TraceMerger().merge(std::move(threads));
}

Cycles
cyclesFor(const trace::TraceBuffer &buf, mem::EngineParams ep,
          mem::StackOption opt = mem::StackOption::Baseline4MB)
{
    mem::MemoryHierarchy hier(mem::makeHierarchyParams(opt));
    return mem::TraceEngine(ep).run(buf, hier).total_cycles;
}

} // anonymous namespace

class EngineSeedTest : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(EngineSeedTest, WiderIssueAndWindowNeverSlowDown)
{
    trace::TraceBuffer buf = mixedTrace(GetParam());

    mem::EngineParams narrow;
    narrow.issue_width = 1;
    narrow.window = 32;
    mem::EngineParams wide;
    wide.issue_width = 2;
    wide.window = 256;

    Cycles c_narrow = cyclesFor(buf, narrow);
    Cycles c_wide = cyclesFor(buf, wide);
    EXPECT_LE(c_wide, c_narrow + c_narrow / 100);
}

TEST_P(EngineSeedTest, IgnoringDependenciesNeverSlowsDown)
{
    trace::TraceBuffer buf = mixedTrace(GetParam());
    mem::EngineParams honor;
    mem::EngineParams infinite = honor;
    infinite.honor_dependencies = false;
    EXPECT_LE(cyclesFor(buf, infinite), cyclesFor(buf, honor) + 1);
}

TEST_P(EngineSeedTest, CyclesBoundedByIssueFloor)
{
    trace::TraceBuffer buf = mixedTrace(GetParam());
    mem::EngineParams ep;
    ep.warmup_fraction = 0.0;
    // Two cpus at 1/cycle: at least n/2 cycles.
    EXPECT_GE(cyclesFor(buf, ep), Cycles(buf.size() / 2));
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineSeedTest,
                         ::testing::Values(3, 17, 2024));

// ---------------------------------------------------------------------
// pipeline properties
// ---------------------------------------------------------------------

class PipelineLatencySweep : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(PipelineLatencySweep, DeeperStoreLifetimeNeverFaster)
{
    workloads::CpuWorkloadParams params;
    params.name = "sweep";
    params.frac_store = 0.18;
    params.store_burst = 8.0;
    auto uops = workloads::generateCpuTrace(params, 40000, 5);

    cpu::PipelineConfig shallow = cpu::PipelineConfig::planar();
    shallow.store_lifetime = GetParam();
    cpu::PipelineConfig deep = shallow;
    deep.store_lifetime = GetParam() + 20;

    Cycles c_shallow = cpu::PipelineModel(shallow).run(uops).cycles;
    Cycles c_deep = cpu::PipelineModel(deep).run(uops).cycles;
    EXPECT_LE(c_shallow, c_deep + 1);
}

INSTANTIATE_TEST_SUITE_P(Lifetimes, PipelineLatencySweep,
                         ::testing::Values(5u, 20u, 40u, 80u));

TEST(PipelineProperties, MorePredictableBranchesAreFaster)
{
    workloads::CpuWorkloadParams good;
    good.name = "good";
    good.frac_branch = 0.18;
    good.mispredict_rate = 0.01;
    workloads::CpuWorkloadParams bad = good;
    bad.mispredict_rate = 0.10;

    cpu::PipelineModel model(cpu::PipelineConfig::planar());
    double ipc_good =
        model.run(workloads::generateCpuTrace(good, 40000, 7)).ipc;
    double ipc_bad =
        model.run(workloads::generateCpuTrace(bad, 40000, 7)).ipc;
    EXPECT_GT(ipc_good, ipc_bad * 1.2);
}

TEST(PipelineProperties, StackedConfigDominatesEveryPartial)
{
    // The full 3D configuration is at least as fast as any single-
    // path reduction alone.
    workloads::CpuWorkloadParams params;
    params.name = "dom";
    params.frac_fp = 0.2;
    params.frac_fp_load = 0.05;
    params.fp_chain = 0.5;
    auto uops = workloads::generateCpuTrace(params, 50000, 9);

    Cycles full =
        cpu::PipelineModel(cpu::PipelineConfig::stacked3d())
            .run(uops)
            .cycles;
    for (unsigned p = 0; p < cpu::kNumPaths; ++p) {
        cpu::PipelineConfig cfg = cpu::PipelineConfig::planar();
        cfg.applyPathReduction(cpu::Path(p));
        Cycles partial = cpu::PipelineModel(cfg).run(uops).cycles;
        EXPECT_LE(full, partial + partial / 200)
            << cpu::pathName(cpu::Path(p));
    }
}

// ---------------------------------------------------------------------
// power properties
// ---------------------------------------------------------------------

TEST(PowerProperties, Table5MonotoneInVcc)
{
    power::VfScalingModel m;
    double prev = 0.0;
    for (double v = 0.7; v <= 1.3; v += 0.05) {
        double p = m.relativePower(v, m.relativeFreq(v));
        EXPECT_GT(p, prev);
        prev = p;
    }
}

TEST(PowerProperties, BreakdownBoundedByCategories)
{
    power::LogicPowerBreakdown b;
    double total_fraction =
        b.repeater_fraction + b.repeating_latch_fraction +
        b.clock_fraction + b.pipeline_latch_fraction;
    double saving = 1.0 - b.stackedRelativePower();
    EXPECT_LE(saving, total_fraction);
    EXPECT_GT(saving, 0.0);
}

// ---------------------------------------------------------------------
// workload/trace structural properties
// ---------------------------------------------------------------------

class KernelScaleTest
    : public ::testing::TestWithParam<std::tuple<const char *, double>>
{
};

TEST_P(KernelScaleTest, FootprintGrowsWithScale)
{
    auto [name, scale] = GetParam();
    workloads::WorkloadConfig small;
    small.scale = scale;
    workloads::WorkloadConfig big;
    big.scale = scale * 3.0;
    auto kernel = workloads::makeRmsKernel(name);
    EXPECT_LT(kernel->nominalFootprintBytes(small),
              kernel->nominalFootprintBytes(big));
}

INSTANTIATE_TEST_SUITE_P(
    KernelsAndScales, KernelScaleTest,
    ::testing::Combine(::testing::Values("conj", "gauss", "sMVM",
                                         "sUS", "svm"),
                       ::testing::Values(0.1, 0.3)));

TEST(TraceProperties, MergedTraceKeepsPerThreadOrder)
{
    // Within each cpu, merged records appear in their original
    // generation order (the merger must never reorder a thread).
    trace::ThreadTracer t0(0), t1(1);
    for (int i = 0; i < 200; ++i) {
        t0.load(0x1000 + Addr(i) * 8, 0x1);
        t1.load(0x9000 + Addr(i) * 8, 0x2);
    }
    std::vector<std::vector<trace::TraceRecord>> threads;
    threads.push_back(t0.take());
    threads.push_back(t1.take());
    trace::TraceBuffer merged =
        trace::TraceMerger(7).merge(std::move(threads));

    Addr prev0 = 0, prev1 = 0;
    for (std::size_t i = 0; i < merged.size(); ++i) {
        if (merged[i].cpu == 0) {
            EXPECT_GT(merged[i].addr, prev0);
            prev0 = merged[i].addr;
        } else {
            EXPECT_GT(merged[i].addr, prev1);
            prev1 = merged[i].addr;
        }
    }
}
