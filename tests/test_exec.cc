/**
 * @file
 * Tests for the stack3d::exec work-stealing pool and FutureSet:
 * inline-mode ordering, exception propagation, graceful shutdown,
 * stealing under imbalance, and deterministic result collection.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "exec/future_set.hh"
#include "exec/pool.hh"

using namespace stack3d;
using exec::FutureSet;
using exec::ThreadPool;

TEST(ThreadPool, SubmitReturnsValue)
{
    ThreadPool pool(2);
    auto f = pool.submit([] { return 42; });
    EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPool, InlineModeRunsOnCallerInOrder)
{
    ThreadPool pool(0);
    EXPECT_EQ(pool.numThreads(), 0u);

    std::vector<int> order;
    std::thread::id caller = std::this_thread::get_id();
    for (int i = 0; i < 8; ++i) {
        auto f = pool.submit([&order, i, caller] {
            EXPECT_EQ(std::this_thread::get_id(), caller);
            order.push_back(i);
        });
        // Inline mode executes before submit() returns.
        EXPECT_TRUE(f.wait_for(std::chrono::seconds(0)) ==
                    std::future_status::ready);
    }
    ASSERT_EQ(order.size(), 8u);
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(ThreadPool, ManyTasksAllRun)
{
    std::atomic<int> count{0};
    {
        ThreadPool pool(4);
        FutureSet<void> futures;
        for (int i = 0; i < 500; ++i) {
            futures.add(pool.submit(
                [&count] {
                    count.fetch_add(
                        1, std::memory_order_relaxed);
                }));
        }
        futures.wait();
        // relaxed everywhere in these tests: wait()/join provide
        // the synchronization; the atomics only need a tally.
        EXPECT_EQ(count.load(std::memory_order_relaxed), 500);
    }
}

TEST(ThreadPool, WorkDistributesAcrossThreads)
{
    // With several workers and slow-ish tasks, more than one thread
    // must participate (exercises the stealing path: round-robin
    // placement plus idle workers stealing the stragglers).
    ThreadPool pool(4);
    std::mutex mutex;
    std::set<std::thread::id> seen;
    FutureSet<void> futures;
    for (int i = 0; i < 64; ++i) {
        futures.add(pool.submit([&] {
            std::this_thread::sleep_for(std::chrono::milliseconds(2));
            std::lock_guard<std::mutex> lock(mutex);
            seen.insert(std::this_thread::get_id());
        }));
    }
    futures.wait();
    EXPECT_GE(seen.size(), 2u);
}

TEST(ThreadPool, ExceptionPropagatesThroughFuture)
{
    ThreadPool pool(2);
    auto f = pool.submit([]() -> int {
        throw std::runtime_error("boom");
    });
    EXPECT_THROW(
        {
            try {
                f.get();
            } catch (const std::runtime_error &e) {
                EXPECT_STREQ(e.what(), "boom");
                throw;
            }
        },
        std::runtime_error);
}

TEST(ThreadPool, ShutdownDrainsQueuedTasks)
{
    std::atomic<int> count{0};
    {
        ThreadPool pool(2);
        for (int i = 0; i < 100; ++i) {
            pool.submit([&count] {
                std::this_thread::sleep_for(
                    std::chrono::microseconds(200));
                count.fetch_add(1, std::memory_order_relaxed);
            });
        }
        // Destructor must finish everything already submitted.
    }
    EXPECT_EQ(count.load(std::memory_order_relaxed), 100);
}

TEST(FutureSetTest, CollectPreservesSubmissionOrder)
{
    ThreadPool pool(4);
    FutureSet<int> futures;
    for (int i = 0; i < 32; ++i) {
        futures.add(pool.submit([i] {
            // Reverse-staggered completion: later tasks finish first.
            std::this_thread::sleep_for(
                std::chrono::microseconds((32 - i) * 50));
            return i;
        }));
    }
    std::vector<int> results = futures.collect();
    ASSERT_EQ(results.size(), 32u);
    for (int i = 0; i < 32; ++i)
        EXPECT_EQ(results[i], i);
}

TEST(FutureSetTest, FirstSubmittedExceptionWinsAfterAllFinish)
{
    ThreadPool pool(4);
    std::atomic<int> completed{0};
    FutureSet<void> futures;
    for (int i = 0; i < 16; ++i) {
        futures.add(pool.submit([&completed, i] {
            if (i == 3)
                throw std::runtime_error("first");
            if (i == 11)
                throw std::logic_error("second");
            completed.fetch_add(1, std::memory_order_relaxed);
        }));
    }
    try {
        futures.wait();
        FAIL() << "expected an exception";
    } catch (const std::runtime_error &e) {
        EXPECT_STREQ(e.what(), "first");
    }
    // Every non-throwing sibling ran to completion before the rethrow.
    EXPECT_EQ(completed.load(std::memory_order_relaxed), 14);
}

TEST(ParallelFor, CoversFullRangeOnceEach)
{
    for (unsigned threads : {0u, 1u, 4u}) {
        ThreadPool pool(threads);
        std::vector<std::atomic<int>> hits(257);
        exec::parallelFor(pool, hits.size(), [&](std::size_t i) {
            hits[i].fetch_add(1, std::memory_order_relaxed);
        });
        for (std::size_t i = 0; i < hits.size(); ++i)
            EXPECT_EQ(hits[i].load(), 1) << "index " << i;
    }
}

TEST(ThreadPool, HardwareThreadsIsPositive)
{
    EXPECT_GE(ThreadPool::hardwareThreads(), 1u);
}
