# Chaos smoke: replays the canned request script through
# stack3d_serve with deterministic fault injection armed
# (common/fault.hh), proving the robustness story end to end:
#
#   1. Determinism pair — two runs with the same $STACK3D_FAULT_SEED
#      over the deadline-free subset of the requests (a deadline
#      observation point depends on wall-clock, so how many cells a
#      timed-out study draws through is a race; everything else is a
#      pure function of the seed under the serial transport with
#      --workers 1 --threads 1). The stats files land side by side
#      for a `json_check same` over counters.serve.fault.
#
#   2. Accounting run — the full script (deadline + oversized line
#      included) under disk/latency faults at ~10%. The daemon must
#      exit 0, answer every line, time out exactly the one deadline
#      request, and reject exactly the one oversized line — asserted
#      afterwards with `json_check eq` on the stats file.
#
# No run may crash, hang, or drop a request: every execute_process
# checks the exit status and the response-per-request-line count.
#
# Required definitions: -DSERVE=<stack3d_serve binary>
#   -DREQUESTS=<request .jsonl> -DWORK=<scratch directory>

set(pair_faults
    "serve.disk.write:0.1,serve.disk.read:0.15,serve.disk.corrupt:0.1,serve.disk.rename:0.1,serve.disk.latency:0.2:2,exec.task.slow:0.2:2,study.cell.fail:0.1")
set(acct_faults
    "serve.disk.write:0.1,serve.disk.read:0.15,serve.disk.corrupt:0.1,serve.disk.latency:0.2:2")

file(MAKE_DIRECTORY ${WORK})

# The determinism pair skips deadline requests (see header comment).
file(STRINGS ${REQUESTS} request_lines)
set(pair_requests ${WORK}/chaos_requests.jsonl)
file(WRITE ${pair_requests} "")
set(n_pair 0)
foreach(line IN LISTS request_lines)
    if(NOT line MATCHES "deadline_ms")
        file(APPEND ${pair_requests} "${line}\n")
        math(EXPR n_pair "${n_pair} + 1")
    endif()
endforeach()

function(chaos_run tag requests n_expected faults)
    set(ENV{STACK3D_FAULTS} "${faults}")
    # Seed 9 is chosen so the schedule actually fires (two study
    # cells fail across the pair) — a zero-fire chaos run would
    # vacuously pass the determinism comparison.
    set(ENV{STACK3D_FAULT_SEED} "9")
    set(cache_dir ${WORK}/cache_${tag})
    file(REMOVE_RECURSE ${cache_dir})
    execute_process(
        COMMAND ${SERVE} --stdin --quiet --threads 1 --workers 1
                --max-line 2048 --cache-dir ${cache_dir}
                --stats-json ${WORK}/stats_${tag}.json
        INPUT_FILE ${requests}
        OUTPUT_FILE ${WORK}/out_${tag}.jsonl
        ERROR_FILE ${WORK}/err_${tag}.log
        TIMEOUT 120
        RESULT_VARIABLE rc)
    unset(ENV{STACK3D_FAULTS})
    unset(ENV{STACK3D_FAULT_SEED})
    if(NOT rc EQUAL 0)
        message(FATAL_ERROR
                "chaos run ${tag}: stack3d_serve exited with ${rc}")
    endif()
    file(STRINGS ${WORK}/out_${tag}.jsonl response_lines)
    list(LENGTH response_lines n_responses)
    if(NOT n_responses EQUAL n_expected)
        message(FATAL_ERROR
                "chaos run ${tag}: ${n_expected} request(s) but "
                "${n_responses} response(s)")
    endif()
endfunction()

chaos_run(a ${pair_requests} ${n_pair} "${pair_faults}")
chaos_run(b ${pair_requests} ${n_pair} "${pair_faults}")

list(LENGTH request_lines n_all)
chaos_run(acct ${REQUESTS} ${n_all} "${acct_faults}")
