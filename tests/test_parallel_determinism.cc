/**
 * @file
 * The parallel-study determinism guarantee: a study run on N threads
 * must be bit-identical to the same study on 1 thread with the same
 * seed. Cells derive their RNG streams from (seed, cell key), never
 * from shared state, and results merge in canonical cell order — so
 * every floating-point value must match exactly, not approximately.
 */

#include <gtest/gtest.h>

#include "core/logic_study.hh"
#include "core/memory_study.hh"
#include "core/run_options.hh"
#include "core/thermal_study.hh"
#include "exec/pool.hh"

using namespace stack3d;
using namespace stack3d::core;

namespace {

RunOptions
tinyOptions(unsigned threads)
{
    RunOptions opts;
    opts.threads = threads;
    opts.seed = 11;
    opts.depth = 0.02;
    opts.scale = 0.3;
    opts.verbosity = Verbosity::Silent;
    return opts;
}

void
expectRowsIdentical(const MemoryStudyResult &a,
                    const MemoryStudyResult &b)
{
    ASSERT_EQ(a.rows.size(), b.rows.size());
    for (std::size_t i = 0; i < a.rows.size(); ++i) {
        const MemoryStudyRow &ra = a.rows[i];
        const MemoryStudyRow &rb = b.rows[i];
        EXPECT_EQ(ra.benchmark, rb.benchmark);
        EXPECT_EQ(ra.records, rb.records);
        EXPECT_EQ(ra.footprint_mb, rb.footprint_mb);
        for (int o = 0; o < 4; ++o) {
            // Bitwise equality, not EXPECT_NEAR: the guarantee is
            // exactness.
            EXPECT_EQ(ra.cpma[o], rb.cpma[o]) << ra.benchmark;
            EXPECT_EQ(ra.bw_gbps[o], rb.bw_gbps[o]) << ra.benchmark;
            EXPECT_EQ(ra.bus_power_w[o], rb.bus_power_w[o]);
            EXPECT_EQ(ra.llc_miss[o], rb.llc_miss[o]);
        }
    }
    EXPECT_EQ(a.summary.avg_cpma_reduction_32m,
              b.summary.avg_cpma_reduction_32m);
    EXPECT_EQ(a.summary.max_cpma_reduction_32m,
              b.summary.max_cpma_reduction_32m);
    EXPECT_EQ(a.summary.avg_bw_reduction_factor_32m,
              b.summary.avg_bw_reduction_factor_32m);
    EXPECT_EQ(a.summary.avg_bus_power_reduction_32m,
              b.summary.avg_bus_power_reduction_32m);
}

} // anonymous namespace

TEST(ParallelDeterminism, MemoryStudyMatchesSerial)
{
    MemoryStudySpec spec;
    spec.benchmarks = {"gauss", "svd", "conj"};

    auto serial = runMemoryStudy(tinyOptions(1), spec);
    auto parallel4 = runMemoryStudy(tinyOptions(4), spec);
    auto parallel_auto = runMemoryStudy(tinyOptions(0), spec);

    expectRowsIdentical(serial.payload, parallel4.payload);
    expectRowsIdentical(serial.payload, parallel_auto.payload);

    EXPECT_EQ(serial.meta.threads_used, 1u);
    EXPECT_EQ(parallel4.meta.threads_used, 4u);
    // 3 benchmarks x (1 trace + 4 option) cells.
    EXPECT_EQ(serial.meta.cells.size(), 15u);
    for (const CellTiming &cell : serial.meta.cells)
        EXPECT_GT(cell.seconds, 0.0) << cell.label;
}

TEST(ParallelDeterminism, MemoryStudySeedChangesResults)
{
    // sMVM builds its sparsity pattern from the RNG, so its address
    // stream (and hence CPMA) is seed-sensitive; dense kernels like
    // gauss only vary data values with the seed.
    MemoryStudySpec spec;
    spec.benchmarks = {"sMVM"};

    RunOptions a = tinyOptions(1);
    RunOptions b = tinyOptions(1);
    b.seed = 12345;
    double cpma_a = runMemoryStudy(a, spec).payload.rows[0].cpma[0];
    double cpma_b = runMemoryStudy(b, spec).payload.rows[0].cpma[0];
    EXPECT_NE(cpma_a, cpma_b);
}

TEST(ParallelDeterminism, LogicStudyTable5MatchesSerial)
{
    LogicStudySpec spec;
    spec.suite.uops_per_trace = 6000;
    spec.die_nx = 21;
    spec.die_ny = 19;

    RunOptions serial_opts;
    serial_opts.threads = 1;
    serial_opts.seed = 7;
    RunOptions parallel_opts = serial_opts;
    parallel_opts.threads = 4;

    auto serial = runLogicStudy(serial_opts, spec);
    auto parallel = runLogicStudy(parallel_opts, spec);

    const LogicStudyResult &a = serial.payload;
    const LogicStudyResult &b = parallel.payload;
    EXPECT_EQ(a.table4.total_perf_gain_pct,
              b.table4.total_perf_gain_pct);
    EXPECT_EQ(a.power_saving_3d, b.power_saving_3d);
    EXPECT_EQ(a.fig11.planar.peak_c, b.fig11.planar.peak_c);
    EXPECT_EQ(a.fig11.stacked.peak_c, b.fig11.stacked.peak_c);
    EXPECT_EQ(a.fig11.worst_case.peak_c, b.fig11.worst_case.peak_c);
    ASSERT_EQ(a.table5.size(), b.table5.size());
    for (std::size_t i = 0; i < a.table5.size(); ++i) {
        EXPECT_EQ(a.table5[i].temp_c, b.table5[i].temp_c) << i;
        EXPECT_EQ(a.table5[i].point.power_w, b.table5[i].point.power_w);
    }
    // 4 stage-1 cells + 4 Table 5 solves.
    EXPECT_EQ(serial.meta.cells.size(), 8u);
}

TEST(ParallelDeterminism, StackThermalStudyMatchesSerial)
{
    StackThermalSpec spec;
    spec.die_nx = 21;
    spec.die_ny = 17;

    RunOptions serial_opts;
    serial_opts.threads = 1;
    RunOptions parallel_opts;
    parallel_opts.threads = 4;

    auto serial = runStackThermalStudy(serial_opts, spec);
    auto parallel = runStackThermalStudy(parallel_opts, spec);
    for (int i = 0; i < 4; ++i) {
        EXPECT_EQ(serial.payload.options[i].peak_c,
                  parallel.payload.options[i].peak_c)
            << i;
        EXPECT_EQ(serial.payload.options[i].min_c,
                  parallel.payload.options[i].min_c);
    }
}

TEST(ParallelDeterminism, SensitivitySweepMatchesSerial)
{
    SensitivitySpec spec;
    spec.conductivities = {60, 12};
    spec.die_nx = 18;
    spec.die_ny = 16;

    RunOptions serial_opts;
    serial_opts.threads = 1;
    RunOptions parallel_opts;
    parallel_opts.threads = 3;

    auto serial = runConductivitySensitivity(serial_opts, spec);
    auto parallel = runConductivitySensitivity(parallel_opts, spec);
    ASSERT_EQ(serial.payload.size(), 2u);
    for (std::size_t i = 0; i < serial.payload.size(); ++i) {
        EXPECT_EQ(serial.payload[i].peak_cu_swept,
                  parallel.payload[i].peak_cu_swept);
        EXPECT_EQ(serial.payload[i].peak_bond_swept,
                  parallel.payload[i].peak_bond_swept);
    }
}

TEST(ParallelDeterminism, DerivedCellSeedsAreDistinct)
{
    EXPECT_NE(deriveCellSeed(1, 0), deriveCellSeed(1, 1));
    EXPECT_NE(deriveCellSeed(1, 0), deriveCellSeed(2, 0));
    EXPECT_EQ(deriveCellSeed(9, 42), deriveCellSeed(9, 42));
    EXPECT_NE(cellKey("gauss"), cellKey("svd"));
    EXPECT_EQ(cellKey("gauss"), cellKey("gauss"));
}

TEST(ParallelDeterminism, UnknownBenchmarkFailsBeforeLaunch)
{
    MemoryStudySpec spec;
    spec.benchmarks = {"gauss", "bogus"};
    EXPECT_THROW(runMemoryStudy(tinyOptions(4), spec),
                 std::runtime_error);
}

TEST(ParallelDeterminism, ProgressSinkSeesEveryCell)
{
    struct CountingSink : ProgressSink
    {
        std::size_t started = 0;
        std::size_t finished = 0;
        std::size_t total = 0;
        double last_fraction = 0.0;
        void
        studyStarted(const std::string &, std::size_t cells) override
        {
            total = cells;
        }
        void cellStarted(const CellInfo &) override { ++started; }
        void
        cellFinished(const CellInfo &, double, double frac) override
        {
            ++finished;
            last_fraction = frac;
        }
    };

    CountingSink sink;
    RunOptions opts = tinyOptions(4);
    opts.progress = &sink;
    MemoryStudySpec spec;
    spec.benchmarks = {"svd"};
    runMemoryStudy(opts, spec);

    EXPECT_EQ(sink.total, 5u);
    EXPECT_EQ(sink.started, 5u);
    EXPECT_EQ(sink.finished, 5u);
    EXPECT_DOUBLE_EQ(sink.last_fraction, 1.0);
}

TEST(ParallelDeterminism, SolverPoolIsBitIdentical)
{
    // The solver-level guarantee underlying every study above: a
    // slab-parallel solve on an N-thread pool performs the same
    // floating-point operations in the same order as the serial
    // path, for both preconditioners.
    using namespace stack3d::thermal;
    StackGeometry geom =
        makeTwoDieStack(1e-2, 1e-2, StackedDieType::Dram);
    Mesh mesh(geom, 20, 20);
    PowerMap map(20, 20, 1e-2, 1e-2);
    map.addUniform(70.0);
    mesh.setLayerPower(geom.layerIndex("active1"), map);

    exec::ThreadPool pool(4);
    for (Precond precond : {Precond::Multigrid, Precond::Jacobi}) {
        SolverOptions serial;
        serial.precond = precond;
        SolveInfo si;
        TemperatureField fs = solveSteadyState(mesh, serial, &si);

        SolverOptions pooled = serial;
        pooled.pool = &pool;
        SolveInfo pi;
        TemperatureField fp = solveSteadyState(mesh, pooled, &pi);

        EXPECT_EQ(si.iterations, pi.iterations);
        ASSERT_EQ(fs.raw().size(), fp.raw().size());
        for (std::size_t c = 0; c < fs.raw().size(); ++c)
            EXPECT_EQ(fs.raw()[c], fp.raw()[c]) << c;
    }
}
