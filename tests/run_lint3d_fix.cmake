# --fix idempotence gate. Copies the fixable corpus into a scratch
# dir, runs `lint3d --fix`, diffs the result against the blessed
# fixable/fixme_fixed.cc, then runs --fix a second time and requires
# (a) exit 0 — every finding in the corpus was mechanically fixable —
# and (b) a byte-identical file — the fixer converged in one pass.
#
#   cmake -DLINT3D=<exe> -DFIXTURES=<dir> -DWORK=<dir> -P run_lint3d_fix.cmake
#
# To re-bless after changing the corpus or a fixer:
#
#   cp tests/lint3d_fixtures/fixable/fixme.cc /tmp/fixgen/
#   cp tests/lint3d_fixtures/lint3d.toml /tmp/fixgen/
#   build/tools/lint3d/lint3d --root /tmp/fixgen --config /tmp/fixgen/lint3d.toml --fix
#   cp /tmp/fixgen/fixme.cc tests/lint3d_fixtures/fixable/fixme_fixed.cc

foreach(var LINT3D FIXTURES WORK)
    if(NOT DEFINED ${var})
        message(FATAL_ERROR "run_lint3d_fix.cmake: -D${var}=... is required")
    endif()
endforeach()

file(REMOVE_RECURSE "${WORK}")
file(MAKE_DIRECTORY "${WORK}")
file(COPY "${FIXTURES}/fixable/fixme.cc" DESTINATION "${WORK}")
file(COPY "${FIXTURES}/lint3d.toml" DESTINATION "${WORK}")

# First run: the corpus has deliberate findings (exit 1) and --fix
# rewrites them in place.
execute_process(
    COMMAND "${LINT3D}" --root "${WORK}" --config "${WORK}/lint3d.toml"
            --fix
    OUTPUT_QUIET ERROR_QUIET
    RESULT_VARIABLE rc)
if(NOT rc EQUAL 1)
    message(FATAL_ERROR
        "lint3d --fix exited with ${rc} on the fixable corpus "
        "(expected 1: findings are reported as found, pre-fix)")
endif()

execute_process(
    COMMAND "${CMAKE_COMMAND}" -E compare_files
            "${WORK}/fixme.cc" "${FIXTURES}/fixable/fixme_fixed.cc"
    RESULT_VARIABLE diff)
if(NOT diff EQUAL 0)
    message(FATAL_ERROR
        "--fix output diverged from fixable/fixme_fixed.cc; if the "
        "fixer change is intentional, re-bless per the header comment")
endif()

# Second run: everything fixable was fixed, so the corpus is clean
# (exit 0) and --fix must not touch the file again.
execute_process(
    COMMAND "${LINT3D}" --root "${WORK}" --config "${WORK}/lint3d.toml"
            --fix
    OUTPUT_QUIET ERROR_QUIET
    RESULT_VARIABLE rc2)
if(NOT rc2 EQUAL 0)
    message(FATAL_ERROR
        "second lint3d --fix exited with ${rc2} (expected 0: the "
        "first pass should have fixed every finding)")
endif()
execute_process(
    COMMAND "${CMAKE_COMMAND}" -E compare_files
            "${WORK}/fixme.cc" "${FIXTURES}/fixable/fixme_fixed.cc"
    RESULT_VARIABLE diff2)
if(NOT diff2 EQUAL 0)
    message(FATAL_ERROR "--fix is not idempotent: second run changed the file")
endif()
