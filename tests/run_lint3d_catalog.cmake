# Doc-parity gate: the rule catalog embedded in DESIGN.md between the
# lint3d-rule-catalog markers must be byte-identical to what
# `lint3d --list-rules --markdown` generates with the repo config.
#
#   cmake -DLINT3D=<exe> -DROOT=<repo> -P run_lint3d_catalog.cmake
#
# To re-bless after adding or changing a rule:
#
#   build/tools/lint3d/lint3d --list-rules --markdown --root . \
#       --config .lint3d.toml   # paste between the DESIGN.md markers

foreach(var LINT3D ROOT)
    if(NOT DEFINED ${var})
        message(FATAL_ERROR "run_lint3d_catalog.cmake: -D${var}=... is required")
    endif()
endforeach()

execute_process(
    COMMAND "${LINT3D}" --list-rules --markdown --root "${ROOT}"
            --config "${ROOT}/.lint3d.toml"
    OUTPUT_VARIABLE generated
    RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "lint3d --list-rules --markdown exited with ${rc}")
endif()

file(READ "${ROOT}/DESIGN.md" design)
set(begin_marker "<!-- lint3d-rule-catalog:begin (generated; see tests/run_lint3d_catalog.cmake) -->\n")
set(end_marker "<!-- lint3d-rule-catalog:end -->")
string(FIND "${design}" "${begin_marker}" begin_at)
string(FIND "${design}" "${end_marker}" end_at)
if(begin_at EQUAL -1 OR end_at EQUAL -1)
    message(FATAL_ERROR "DESIGN.md is missing the lint3d-rule-catalog markers")
endif()
string(LENGTH "${begin_marker}" begin_len)
math(EXPR embed_at "${begin_at} + ${begin_len}")
math(EXPR embed_len "${end_at} - ${embed_at}")
if(embed_len LESS 0)
    message(FATAL_ERROR "DESIGN.md catalog markers are out of order")
endif()
string(SUBSTRING "${design}" ${embed_at} ${embed_len} embedded)

if(NOT embedded STREQUAL generated)
    message(FATAL_ERROR
        "DESIGN.md rule catalog is stale; regenerate it per the "
        "header comment of tests/run_lint3d_catalog.cmake")
endif()
