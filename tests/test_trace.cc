/**
 * @file
 * Unit tests for the trace substrate: records, buffers, the
 * dependency-tracking writer, the SMP merger, and file I/O.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "trace/buffer.hh"
#include "trace/file.hh"
#include "trace/record.hh"
#include "trace/writer.hh"
#include "workloads/config.hh"
#include "workloads/registry.hh"

using namespace stack3d;
using namespace stack3d::trace;

// ---------------------------------------------------------------------
// records and buffers
// ---------------------------------------------------------------------

TEST(Record, Defaults)
{
    TraceRecord rec;
    EXPECT_FALSE(rec.hasDep());
    EXPECT_EQ(rec.op, MemOp::Load);
    EXPECT_EQ(rec.size, 8);
}

TEST(Record, OpNames)
{
    EXPECT_STREQ(memOpName(MemOp::Load), "load");
    EXPECT_STREQ(memOpName(MemOp::Store), "store");
    EXPECT_STREQ(memOpName(MemOp::Ifetch), "ifetch");
}

TEST(Buffer, ValidateAcceptsWellFormed)
{
    std::vector<TraceRecord> recs(3);
    recs[1].dep = 0;
    recs[2].dep = 1;
    TraceBuffer buf(std::move(recs));
    EXPECT_TRUE(buf.validate());
}

TEST(Buffer, ValidateRejectsForwardDep)
{
    std::vector<TraceRecord> recs(2);
    recs[0].dep = 1;   // depends on a later record
    TraceBuffer buf(std::move(recs));
    EXPECT_FALSE(buf.validate());
}

TEST(Buffer, ValidateRejectsSelfDep)
{
    std::vector<TraceRecord> recs(1);
    recs[0].dep = 0;
    TraceBuffer buf(std::move(recs));
    EXPECT_FALSE(buf.validate());
}

TEST(Buffer, ValidateRejectsBadSize)
{
    std::vector<TraceRecord> recs(1);
    recs[0].size = 0;
    EXPECT_FALSE(TraceBuffer(std::move(recs)).validate());

    std::vector<TraceRecord> recs2(1);
    recs2[0].size = 65;
    EXPECT_FALSE(TraceBuffer(std::move(recs2)).validate());
}

TEST(Buffer, StatsCountsOpsAndFootprint)
{
    std::vector<TraceRecord> recs;
    TraceRecord r;
    r.addr = 0x1000;
    r.op = MemOp::Load;
    recs.push_back(r);
    r.addr = 0x1008;   // same 64 B line
    r.op = MemOp::Store;
    recs.push_back(r);
    r.addr = 0x2000;   // new line
    r.op = MemOp::Ifetch;
    r.cpu = 1;
    recs.push_back(r);

    TraceStats st = TraceBuffer(std::move(recs)).computeStats();
    EXPECT_EQ(st.num_records, 3u);
    EXPECT_EQ(st.num_loads, 1u);
    EXPECT_EQ(st.num_stores, 1u);
    EXPECT_EQ(st.num_ifetches, 1u);
    EXPECT_EQ(st.footprint_lines, 2u);
    EXPECT_EQ(st.footprint_bytes, 128u);
    EXPECT_EQ(st.records_cpu0, 2u);
    EXPECT_EQ(st.records_cpu1, 1u);
}

TEST(Buffer, StatsDependencyChain)
{
    std::vector<TraceRecord> recs(4);
    recs[1].dep = 0;
    recs[2].dep = 1;
    recs[3].dep = 2;
    TraceStats st = TraceBuffer(std::move(recs)).computeStats();
    EXPECT_EQ(st.num_with_dep, 3u);
    EXPECT_EQ(st.max_dep_chain, 4u);
}

// ---------------------------------------------------------------------
// writer
// ---------------------------------------------------------------------

TEST(Writer, RecordsCarryCpuAndIp)
{
    ThreadTracer tracer(1);
    tracer.load(0x100, 0x400000);
    auto recs = tracer.take();
    ASSERT_EQ(recs.size(), 1u);
    EXPECT_EQ(recs[0].cpu, 1);
    EXPECT_EQ(recs[0].ip, 0x400000u);
    EXPECT_EQ(recs[0].addr, 0x100u);
}

TEST(Writer, ExplicitDependencyWins)
{
    ThreadTracer tracer(0);
    RecordId idx = tracer.load(0x100, 0x1);
    tracer.store(0x200, 0x2);   // would set last-writer of 0x200
    RecordId gather = tracer.load(0x200, 0x3, idx);
    auto recs = tracer.take();
    // The gather's dep is the explicit index load, not the store.
    EXPECT_EQ(recs[gather].dep, idx);
}

TEST(Writer, RawThroughMemoryTracked)
{
    ThreadTracer tracer(0);
    RecordId st = tracer.store(0x1000, 0x1);
    RecordId ld = tracer.load(0x1008, 0x2);   // same 64 B line
    auto recs = tracer.take();
    EXPECT_EQ(recs[ld].dep, st);
}

TEST(Writer, NoRawAcrossDifferentLines)
{
    ThreadTracer tracer(0);
    tracer.store(0x1000, 0x1);
    RecordId ld = tracer.load(0x2000, 0x2);
    auto recs = tracer.take();
    EXPECT_FALSE(recs[ld].hasDep());
}

TEST(Writer, RawTrackingCanBeDisabled)
{
    ThreadTracer tracer(0, /*track_raw=*/false);
    tracer.store(0x1000, 0x1);
    RecordId ld = tracer.load(0x1000, 0x2);
    auto recs = tracer.take();
    EXPECT_FALSE(recs[ld].hasDep());
}

TEST(Writer, TakeResetsState)
{
    ThreadTracer tracer(0);
    tracer.store(0x1000, 0x1);
    (void)tracer.take();
    EXPECT_EQ(tracer.size(), 0u);
    // The last-writer map is cleared too: no stale RAW dep.
    RecordId ld = tracer.load(0x1000, 0x2);
    auto recs = tracer.take();
    EXPECT_FALSE(recs[ld].hasDep());
}

// ---------------------------------------------------------------------
// merger
// ---------------------------------------------------------------------

TEST(Merger, InterleavesInChunks)
{
    ThreadTracer t0(0), t1(1);
    for (int i = 0; i < 4; ++i)
        t0.load(0x1000 + i * 64, 0x1);
    for (int i = 0; i < 4; ++i)
        t1.load(0x2000 + i * 64, 0x2);

    std::vector<std::vector<TraceRecord>> threads;
    threads.push_back(t0.take());
    threads.push_back(t1.take());
    TraceBuffer merged = TraceMerger(2).merge(std::move(threads));

    ASSERT_EQ(merged.size(), 8u);
    // Chunk pattern: 0 0 1 1 0 0 1 1.
    const std::uint8_t expect[] = {0, 0, 1, 1, 0, 0, 1, 1};
    for (std::size_t i = 0; i < 8; ++i)
        EXPECT_EQ(merged[i].cpu, expect[i]) << "at " << i;
}

TEST(Merger, RemapsDependencies)
{
    ThreadTracer t0(0), t1(1);
    t0.load(0x1000, 0x1);
    RecordId st1 = t1.store(0x2000, 0x2);
    RecordId ld1 = t1.load(0x2000, 0x3);
    (void)st1;
    (void)ld1;
    t0.load(0x1040, 0x4);

    std::vector<std::vector<TraceRecord>> threads;
    threads.push_back(t0.take());
    threads.push_back(t1.take());
    TraceBuffer merged = TraceMerger(1).merge(std::move(threads));

    ASSERT_TRUE(merged.validate());
    // Find the thread-1 load; its dep must point at the thread-1
    // store in merged coordinates.
    for (std::size_t i = 0; i < merged.size(); ++i) {
        if (merged[i].cpu == 1 && merged[i].op == MemOp::Load) {
            ASSERT_TRUE(merged[i].hasDep());
            EXPECT_EQ(merged[merged[i].dep].op, MemOp::Store);
            EXPECT_EQ(merged[merged[i].dep].cpu, 1);
        }
    }
}

TEST(Merger, HandlesUnevenThreads)
{
    ThreadTracer t0(0), t1(1);
    for (int i = 0; i < 10; ++i)
        t0.load(0x1000 + i * 64, 0x1);
    t1.load(0x2000, 0x2);

    std::vector<std::vector<TraceRecord>> threads;
    threads.push_back(t0.take());
    threads.push_back(t1.take());
    TraceBuffer merged = TraceMerger(4).merge(std::move(threads));
    EXPECT_EQ(merged.size(), 11u);
    EXPECT_TRUE(merged.validate());
}

class MergerChunkTest : public ::testing::TestWithParam<std::size_t>
{
};

TEST_P(MergerChunkTest, PreservesAllRecordsAndValidity)
{
    ThreadTracer t0(0), t1(1);
    RecordId prev = kNone;
    for (int i = 0; i < 37; ++i)
        prev = t0.load(0x1000 + i * 8, 0x1, prev);
    for (int i = 0; i < 53; ++i) {
        t1.store(0x8000 + i * 8, 0x2);
        t1.load(0x8000 + i * 8, 0x3);
    }
    std::vector<std::vector<TraceRecord>> threads;
    threads.push_back(t0.take());
    threads.push_back(t1.take());
    TraceBuffer merged = TraceMerger(GetParam()).merge(
        std::move(threads));
    EXPECT_EQ(merged.size(), 37u + 106u);
    EXPECT_TRUE(merged.validate());
}

INSTANTIATE_TEST_SUITE_P(Chunks, MergerChunkTest,
                         ::testing::Values(1, 2, 7, 64, 1000));

// ---------------------------------------------------------------------
// file I/O
// ---------------------------------------------------------------------

namespace {

std::string
tempPath(const char *name)
{
    return (std::filesystem::temp_directory_path() / name).string();
}

} // anonymous namespace

TEST(TraceFile, RoundTrip)
{
    ThreadTracer tracer(0);
    RecordId prev = kNone;
    for (int i = 0; i < 1000; ++i)
        prev = tracer.load(0x1000 + i * 16, 0x400000 + i, prev, 16);
    TraceBuffer original(tracer.take());

    std::string path = tempPath("stack3d_trace_test.bin");
    writeTraceFile(path, original);
    TraceBuffer loaded = readTraceFile(path);

    ASSERT_EQ(loaded.size(), original.size());
    for (std::size_t i = 0; i < loaded.size(); ++i)
        EXPECT_TRUE(loaded[i] == original[i]) << "record " << i;
    std::remove(path.c_str());
}

TEST(TraceFile, MissingFileIsFatal)
{
    EXPECT_THROW(readTraceFile("/nonexistent/path/trace.bin"),
                 std::runtime_error);
}

TEST(TraceFile, BadMagicIsFatal)
{
    std::string path = tempPath("stack3d_bad_magic.bin");
    {
        std::ofstream out(path, std::ios::binary);
        out << "NOT A TRACE FILE AT ALL........................";
    }
    EXPECT_THROW(readTraceFile(path), std::runtime_error);
    std::remove(path.c_str());
}

TEST(TraceFile, TruncatedIsFatal)
{
    ThreadTracer tracer(0);
    for (int i = 0; i < 100; ++i)
        tracer.load(0x1000 + i * 64, 0x1);
    TraceBuffer buf(tracer.take());
    std::string path = tempPath("stack3d_truncated.bin");
    writeTraceFile(path, buf);
    std::filesystem::resize_file(path, 100);
    EXPECT_THROW(readTraceFile(path), std::runtime_error);
    std::remove(path.c_str());
}

// ---------------------------------------------------------------------
// run-to-run reproducibility
// ---------------------------------------------------------------------

namespace {

std::string
fileBytes(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << path;
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

} // anonymous namespace

/**
 * Two generations of the same workload trace must produce
 * byte-identical trace files: generation, stats, and serialization
 * may not depend on hash order, allocation addresses, or any other
 * run-varying state. Guards the det-unordered-container policy
 * (trace/writer.hh, trace/buffer.cc) end to end.
 */
TEST(TraceFile, IdenticalRunsAreByteIdentical)
{
    workloads::WorkloadConfig cfg;
    cfg.num_threads = 2;
    cfg.records_per_thread = 20000;
    cfg.seed = 42;
    cfg.scale = 0.01;
    auto kernel = workloads::makeRmsKernel("gauss");

    std::string path_a = tempPath("stack3d_repro_a.bin");
    std::string path_b = tempPath("stack3d_repro_b.bin");

    TraceBuffer run_a = kernel->generate(cfg);
    writeTraceFile(path_a, run_a);
    TraceBuffer run_b = kernel->generate(cfg);
    writeTraceFile(path_b, run_b);

    TraceStats stats_a = run_a.computeStats();
    TraceStats stats_b = run_b.computeStats();
    EXPECT_EQ(stats_a.num_records, stats_b.num_records);
    EXPECT_EQ(stats_a.footprint_lines, stats_b.footprint_lines);
    EXPECT_EQ(stats_a.max_dep_chain, stats_b.max_dep_chain);

    std::string bytes_a = fileBytes(path_a);
    std::string bytes_b = fileBytes(path_b);
    ASSERT_FALSE(bytes_a.empty());
    EXPECT_EQ(bytes_a, bytes_b);

    std::remove(path_a.c_str());
    std::remove(path_b.c_str());
}
