/**
 * @file
 * Tests for the live-telemetry layer: the log-bucket histogram
 * (bucket layout, quantile error bounds against exact sorted
 * quantiles, thread-order-independent bucket counts, snapshot
 * merging), the registry (providers, gauge tagging), the Prometheus
 * text exposition, and the flight recorder ring.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/json.hh"
#include "common/json_parse.hh"
#include "common/random.hh"
#include "obs/expo.hh"
#include "obs/histogram.hh"
#include "obs/registry.hh"
#include "serve/flight_recorder.hh"

using namespace stack3d;

namespace {

JsonValue
parsed(const std::string &text)
{
    JsonValue v;
    std::string error;
    EXPECT_TRUE(parseJson(text, v, error)) << error;
    return v;
}

/** Exact quantile of a sorted sample vector (nearest-rank). */
double
exactQuantile(std::vector<double> sorted, double p)
{
    std::sort(sorted.begin(), sorted.end());
    std::size_t rank = std::size_t(p * double(sorted.size() - 1));
    return sorted[rank];
}

} // anonymous namespace

// ---------------------------------------------------------------------
// histogram: bucket layout
// ---------------------------------------------------------------------

TEST(Histogram, BucketIndexIsMonotonicAndSaturates)
{
    // Below the span -> bucket 0; above -> last bucket. In between,
    // the index never decreases as the value grows.
    EXPECT_EQ(obs::Histogram::bucketIndex(0.0), 0u);
    EXPECT_EQ(obs::Histogram::bucketIndex(obs::Histogram::kMinValue / 8),
              0u);
    EXPECT_EQ(obs::Histogram::bucketIndex(1e30),
              obs::Histogram::kBuckets - 1);

    unsigned last = 0;
    for (double v = obs::Histogram::kMinValue; v < 1e3; v *= 1.07) {
        unsigned idx = obs::Histogram::bucketIndex(v);
        EXPECT_GE(idx, last) << "at value " << v;
        last = idx;
    }
}

TEST(Histogram, BucketUpperBoundsBracketTheirValues)
{
    // Every value lands in a bucket whose upper bound is >= the value
    // and whose predecessor's upper bound is < the value.
    Random rng(7);
    for (int i = 0; i < 1000; ++i) {
        double v = rng.uniformDouble(obs::Histogram::kMinValue, 100.0);
        unsigned idx = obs::Histogram::bucketIndex(v);
        EXPECT_LE(v, obs::Histogram::bucketUpperBound(idx));
        if (idx > 0)
            EXPECT_GT(v, obs::Histogram::bucketUpperBound(idx - 1));
    }
}

// ---------------------------------------------------------------------
// histogram: quantile estimation error
// ---------------------------------------------------------------------

TEST(Histogram, QuantileErrorBoundedVsExactSort)
{
    // The log-midpoint estimate is off by at most half a bucket in
    // log space: rel error <= 2^(1/(2*sub)) - 1 (~9.05% at 4
    // sub-buckets per octave). Check against exact sorted quantiles
    // on a skewed sample mix resembling a latency distribution.
    const double bound =
        std::pow(2.0, 1.0 /
                          (2.0 * obs::Histogram::kSubBucketsPerOctave)) -
        1.0;

    obs::Histogram h;
    std::vector<double> samples;
    Random rng(42);
    for (int i = 0; i < 20000; ++i) {
        // Log-uniform spread over ~4 decades, like hit vs cold paths.
        double v = std::pow(10.0, rng.uniformDouble(-4.0, 0.5));
        samples.push_back(v);
        h.record(v);
    }

    obs::Histogram::Snapshot snap = h.snapshot();
    ASSERT_EQ(snap.count, samples.size());
    for (double p : {0.5, 0.9, 0.95, 0.99}) {
        double exact = exactQuantile(samples, p);
        double est = snap.quantile(p);
        EXPECT_NEAR(est, exact, exact * bound)
            << "p=" << p << " exact=" << exact << " est=" << est;
    }
}

TEST(Histogram, QuantileMonotonicAndEmptyIsZero)
{
    obs::Histogram empty;
    EXPECT_EQ(empty.snapshot().quantile(0.5), 0.0);

    obs::Histogram h;
    Random rng(3);
    for (int i = 0; i < 512; ++i)
        h.record(rng.uniformDouble(1e-5, 1e-1));
    obs::Histogram::Snapshot snap = h.snapshot();
    double last = 0.0;
    for (double p = 0.0; p <= 1.0; p += 0.05) {
        double q = snap.quantile(p);
        EXPECT_GE(q, last);
        last = q;
    }
}

// ---------------------------------------------------------------------
// histogram: determinism across thread interleavings
// ---------------------------------------------------------------------

TEST(Histogram, BucketCountsIndependentOfThreadSpread)
{
    // The same multiset of samples must produce identical snapshot
    // buckets whether recorded serially or scattered across threads
    // (merging is plain addition) — this is what makes same-seed
    // replays byte-identical in the stats output.
    std::vector<double> samples;
    Random rng(11);
    for (int i = 0; i < 8192; ++i)
        samples.push_back(std::pow(10.0, rng.uniformDouble(-5.0, 0.0)));

    obs::Histogram serial;
    for (double v : samples)
        serial.record(v);

    obs::Histogram threaded;
    const unsigned kThreads = 4;
    std::vector<std::thread> workers;
    for (unsigned t = 0; t < kThreads; ++t) {
        workers.emplace_back([&, t] {
            for (std::size_t i = t; i < samples.size(); i += kThreads)
                threaded.record(samples[i]);
        });
    }
    for (auto &w : workers)
        w.join();

    obs::Histogram::Snapshot a = serial.snapshot();
    obs::Histogram::Snapshot b = threaded.snapshot();
    EXPECT_EQ(a.count, b.count);
    EXPECT_EQ(a.buckets, b.buckets);
    EXPECT_NEAR(a.sum, b.sum, 1e-9 * a.sum);
}

TEST(Histogram, SnapshotMergeAddsCounts)
{
    obs::Histogram a, b;
    a.record(1e-3);
    a.record(2e-3);
    b.record(1e-3);
    b.record(0.5);

    obs::Histogram::Snapshot merged = a.snapshot();
    merged.merge(b.snapshot());
    EXPECT_EQ(merged.count, 4u);
    EXPECT_NEAR(merged.sum, 1e-3 + 2e-3 + 1e-3 + 0.5, 1e-12);
    EXPECT_EQ(merged.buckets[obs::Histogram::bucketIndex(1e-3)], 2u);
    EXPECT_EQ(merged.buckets[obs::Histogram::bucketIndex(0.5)], 1u);
}

TEST(Histogram, SnapshotJsonListsOnlyNonEmptyBuckets)
{
    obs::Histogram h;
    h.record(1e-3);
    h.record(1e-3);
    h.record(4e-2);

    std::ostringstream os;
    JsonWriter w(os);
    h.snapshot().writeJson(w);
    JsonValue v = parsed(os.str());
    EXPECT_EQ(v.find("count")->number, 3.0);
    EXPECT_NEAR(v.find("sum")->number, 2e-3 + 4e-2, 1e-12);
    // Two distinct buckets hit -> exactly two [bound, count] pairs.
    const JsonValue *buckets = v.find("buckets");
    ASSERT_NE(buckets, nullptr);
    ASSERT_EQ(buckets->array.size(), 2u);
    EXPECT_EQ(buckets->array[0].array[1].number, 2.0);
    EXPECT_EQ(buckets->array[1].array[1].number, 1.0);
    EXPECT_GT(v.find("p99")->number, v.find("p50")->number);
}

// ---------------------------------------------------------------------
// registry: providers and metric kinds
// ---------------------------------------------------------------------

TEST(Registry, ProvidersRunInRegistrationOrder)
{
    obs::Registry registry;
    registry.addProvider([](obs::CounterSet &c) {
        c.set("alpha.first", 1.0);
    });
    registry.addProvider([](obs::CounterSet &c) {
        c.set("beta.second", 2.0);
    });

    obs::CounterSet counters = registry.counters();
    ASSERT_EQ(counters.scalars().size(), 2u);
    EXPECT_EQ(counters.scalars()[0].first, "alpha.first");
    EXPECT_EQ(counters.scalars()[1].first, "beta.second");
    EXPECT_EQ(counters.value("beta.second"), 2.0);
}

TEST(Registry, GaugeTagsExactAndPrefix)
{
    obs::Registry registry;
    registry.tagGauge("serve.draining");
    registry.tagGauge("pool.depth.*");

    using obs::MetricKind;
    EXPECT_EQ(registry.kindOf("serve.draining"), MetricKind::Gauge);
    EXPECT_EQ(registry.kindOf("serve.requests"), MetricKind::Counter);
    EXPECT_EQ(registry.kindOf("pool.depth.high"), MetricKind::Gauge);
    EXPECT_EQ(registry.kindOf("pool.depths"), MetricKind::Counter);
    // Untagged names default to counter.
    EXPECT_EQ(registry.kindOf("never.seen"), MetricKind::Counter);
}

TEST(Registry, HistogramSnapshotsKeepRegistrationOrder)
{
    obs::Registry registry;
    obs::Histogram hit, cold;
    hit.record(1e-4);
    cold.record(2.0);
    registry.registerHistogram("lat.hit_s", &hit);
    registry.registerHistogram("lat.cold_s", &cold);

    auto snaps = registry.histogramSnapshots();
    ASSERT_EQ(snaps.size(), 2u);
    EXPECT_EQ(snaps[0].first, "lat.hit_s");
    EXPECT_EQ(snaps[0].second.count, 1u);
    EXPECT_EQ(snaps[1].first, "lat.cold_s");
    EXPECT_NEAR(snaps[1].second.sum, 2.0, 1e-12);
}

// ---------------------------------------------------------------------
// prometheus exposition
// ---------------------------------------------------------------------

TEST(Expo, PrometheusNameSanitizes)
{
    EXPECT_EQ(obs::prometheusName("serve.cache.hits"),
              "serve_cache_hits");
    EXPECT_EQ(obs::prometheusName("a-b c.d"), "a_b_c_d");
    EXPECT_EQ(obs::prometheusName("already_fine"), "already_fine");
}

TEST(Expo, TypeLinesFollowKindTagsAndHistogramsAreCumulative)
{
    obs::Registry registry;
    registry.addProvider([](obs::CounterSet &c) {
        c.set("serve.requests", 7.0);
        c.set("serve.in_flight", 2.0);
    });
    registry.tagGauge("serve.in_flight");
    obs::Histogram lat;
    lat.record(1e-3);
    lat.record(1e-3);
    lat.record(0.25);
    // Deliberately reuses the production name in a *local* registry
    // so the expo output matches the served form byte for byte.
    // lint3d: obs-counter-name-ok
    registry.registerHistogram("serve.latency.cold_s", &lat);

    std::ostringstream os;
    obs::writePrometheusText(os, registry);
    std::string text = os.str();

    EXPECT_NE(text.find("# TYPE serve_requests counter"),
              std::string::npos);
    EXPECT_NE(text.find("serve_requests 7"), std::string::npos);
    EXPECT_NE(text.find("# TYPE serve_in_flight gauge"),
              std::string::npos);
    EXPECT_NE(text.find("# TYPE serve_latency_cold_s histogram"),
              std::string::npos);
    // Cumulative buckets: the +Inf bucket equals the total count and
    // the _count/_sum lines close the family.
    EXPECT_NE(text.find("serve_latency_cold_s_bucket{le=\"+Inf\"} 3"),
              std::string::npos);
    EXPECT_NE(text.find("serve_latency_cold_s_count 3"),
              std::string::npos);
    EXPECT_NE(text.find("serve_latency_cold_s_sum"),
              std::string::npos);
}

// ---------------------------------------------------------------------
// flight recorder
// ---------------------------------------------------------------------

namespace {

serve::FlightEntry
entryWithSeqLabel(unsigned i)
{
    serve::FlightEntry e;
    e.trace_id = "t-" + std::to_string(i);
    e.study = "stack-thermal";
    e.status = "ok";
    e.latency_ms = double(i);
    e.queue_depth = i % 3;
    return e;
}

} // anonymous namespace

TEST(FlightRecorder, KeepsInsertionOrderBeforeWrap)
{
    serve::FlightRecorder recorder(8);
    for (unsigned i = 0; i < 5; ++i)
        recorder.note(entryWithSeqLabel(i));

    auto entries = recorder.entries();
    ASSERT_EQ(entries.size(), 5u);
    EXPECT_EQ(recorder.noted(), 5u);
    for (unsigned i = 0; i < 5; ++i) {
        EXPECT_EQ(entries[i].trace_id, "t-" + std::to_string(i));
        EXPECT_EQ(entries[i].seq, i + 1);   // 1-based ordinals
    }
}

TEST(FlightRecorder, WrapKeepsNewestOldestFirst)
{
    serve::FlightRecorder recorder(4);
    for (unsigned i = 0; i < 11; ++i)
        recorder.note(entryWithSeqLabel(i));

    // 11 noted, capacity 4: entries 7..10 survive, oldest first.
    EXPECT_EQ(recorder.noted(), 11u);
    auto entries = recorder.entries();
    ASSERT_EQ(entries.size(), 4u);
    for (unsigned i = 0; i < 4; ++i) {
        EXPECT_EQ(entries[i].trace_id, "t-" + std::to_string(7 + i));
        EXPECT_EQ(entries[i].seq, 8u + i);
    }
}

TEST(FlightRecorder, JsonCarriesTheRing)
{
    serve::FlightRecorder recorder(3);
    serve::FlightEntry e = entryWithSeqLabel(0);
    e.digest_hex = "0x00000000deadbeef";
    e.cached = true;
    recorder.note(e);
    recorder.note(entryWithSeqLabel(1));

    std::ostringstream os;
    JsonWriter w(os);
    recorder.writeJson(w);
    JsonValue v = parsed(os.str());
    ASSERT_TRUE(v.isArray());
    ASSERT_EQ(v.array.size(), 2u);
    EXPECT_EQ(v.array[0].find("trace_id")->string, "t-0");
    EXPECT_EQ(v.array[0].find("digest")->string, "0x00000000deadbeef");
    EXPECT_TRUE(v.array[0].find("cached")->boolean);
    EXPECT_EQ(v.array[1].find("trace_id")->string, "t-1");
    EXPECT_EQ(v.array[1].find("seq")->number, 2.0);
}
