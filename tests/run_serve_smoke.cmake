# Drives stack3d_serve in stdin mode against the canned request
# script (a duplicate stack-thermal pair — the second varies only
# threads — plus a sensitivity study and control lines), leaving the
# stats JSON behind for the json_check eq assertions that prove the
# duplicate was a cache hit. Invoked with cmake -P because CTest
# COMMAND lines cannot redirect stdin.
#
# Required definitions: -DSERVE=<stack3d_serve binary>
#   -DREQUESTS=<request .jsonl> -DSTATS=<stats out> -DOUT=<responses>

execute_process(
    COMMAND ${SERVE} --stdin --quiet --threads 2
            --stats-json ${STATS}
    INPUT_FILE ${REQUESTS}
    OUTPUT_FILE ${OUT}
    RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "stack3d_serve exited with status ${rc}")
endif()
