# Drives stack3d_serve in stdin mode against the canned request
# script (a duplicate stack-thermal pair — the second varies only
# threads — plus a sensitivity study, an unmeetable 1 ms deadline, an
# oversized line, and control lines), leaving the stats JSON behind
# for the json_check eq assertions that prove the duplicate was a
# cache hit, the deadline request timed out, and the oversized line
# got a clean error. Invoked with cmake -P because CTest COMMAND
# lines cannot redirect stdin.
#
# Required definitions: -DSERVE=<stack3d_serve binary>
#   -DREQUESTS=<request .jsonl> -DSTATS=<stats out> -DOUT=<responses>

execute_process(
    COMMAND ${SERVE} --stdin --quiet --threads 2 --max-line 2048
            --stats-json ${STATS}
    INPUT_FILE ${REQUESTS}
    OUTPUT_FILE ${OUT}
    RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "stack3d_serve exited with status ${rc}")
endif()

# Liveness invariant: every request line was answered — ok, timeout,
# rejected, or error — never silently dropped.
file(STRINGS ${REQUESTS} request_lines)
file(STRINGS ${OUT} response_lines)
list(LENGTH request_lines n_requests)
list(LENGTH response_lines n_responses)
if(NOT n_responses EQUAL n_requests)
    message(FATAL_ERROR
            "${n_requests} request(s) but ${n_responses} response(s)")
endif()
