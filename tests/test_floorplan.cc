/**
 * @file
 * Tests for floorplans: geometry, power maps, wire distances, the
 * reference Core 2 Duo / Pentium 4 plans, and the stacking planner.
 */

#include <gtest/gtest.h>

#include "floorplan/floorplan.hh"
#include "floorplan/planner.hh"
#include "floorplan/reference.hh"

using namespace stack3d;
using namespace stack3d::floorplan;

// ---------------------------------------------------------------------
// Floorplan basics
// ---------------------------------------------------------------------

namespace {

Block
makeBlock(const char *name, double x, double y, double w, double h,
          double power, unsigned die = 0)
{
    Block b;
    b.name = name;
    b.x = x;
    b.y = y;
    b.width = w;
    b.height = h;
    b.power = power;
    b.die = die;
    return b;
}

} // anonymous namespace

TEST(Floorplan, BlockGeometry)
{
    Block b = makeBlock("b", 1e-3, 2e-3, 2e-3, 1e-3, 4.0);
    EXPECT_DOUBLE_EQ(b.area(), 2e-6);
    EXPECT_DOUBLE_EQ(b.powerDensity(), 2e6);
    EXPECT_DOUBLE_EQ(b.centerX(), 2e-3);
    EXPECT_DOUBLE_EQ(b.centerY(), 2.5e-3);
}

TEST(Floorplan, RejectsOutOfBounds)
{
    Floorplan fp("t", 1e-2, 1e-2);
    EXPECT_THROW(
        fp.addBlock(makeBlock("b", 9e-3, 0, 2e-3, 1e-3, 1.0)),
        std::runtime_error);
}

TEST(Floorplan, RejectsDuplicateNames)
{
    Floorplan fp("t", 1e-2, 1e-2);
    fp.addBlock(makeBlock("b", 0, 0, 1e-3, 1e-3, 1.0));
    EXPECT_THROW(
        fp.addBlock(makeBlock("b", 5e-3, 5e-3, 1e-3, 1e-3, 1.0)),
        std::runtime_error);
}

TEST(Floorplan, OverlapDetection)
{
    Floorplan fp("t", 1e-2, 1e-2);
    fp.addBlock(makeBlock("a", 0, 0, 2e-3, 2e-3, 1.0));
    fp.addBlock(makeBlock("b", 1e-3, 1e-3, 2e-3, 2e-3, 1.0));
    EXPECT_FALSE(fp.validateNoOverlap());

    Floorplan ok("t2", 1e-2, 1e-2);
    ok.addBlock(makeBlock("a", 0, 0, 2e-3, 2e-3, 1.0));
    ok.addBlock(makeBlock("b", 2e-3, 0, 2e-3, 2e-3, 1.0));
    EXPECT_TRUE(ok.validateNoOverlap());
}

TEST(Floorplan, CrossDieBlocksMayOverlap)
{
    Floorplan fp("t", 1e-2, 1e-2);
    fp.addBlock(makeBlock("a", 0, 0, 2e-3, 2e-3, 1.0, 0));
    fp.addBlock(makeBlock("b", 0, 0, 2e-3, 2e-3, 1.0, 1));
    EXPECT_TRUE(fp.validateNoOverlap());
}

TEST(Floorplan, PowerAccounting)
{
    Floorplan fp("t", 1e-2, 1e-2);
    fp.addBlock(makeBlock("a", 0, 0, 2e-3, 2e-3, 3.0, 0));
    fp.addBlock(makeBlock("b", 4e-3, 0, 2e-3, 2e-3, 5.0, 1));
    EXPECT_DOUBLE_EQ(fp.totalPower(), 8.0);
    EXPECT_DOUBLE_EQ(fp.diePower(0), 3.0);
    EXPECT_DOUBLE_EQ(fp.diePower(1), 5.0);
    EXPECT_DOUBLE_EQ(fp.dieArea(0), 4e-6);
}

TEST(Floorplan, PowerMapConservesBlockPower)
{
    Floorplan fp("t", 1e-2, 1e-2);
    fp.addBlock(makeBlock("a", 1.3e-3, 2.7e-3, 2.4e-3, 3.1e-3, 7.5));
    fp.addBlock(makeBlock("b", 6e-3, 6e-3, 3e-3, 3e-3, 2.5));
    thermal::PowerMap map = fp.powerMap(17, 23, 0);
    EXPECT_NEAR(map.totalWatts(), 10.0, 1e-9);
}

TEST(Floorplan, WireDistanceIsManhattanBetweenCenters)
{
    Floorplan fp("t", 1e-2, 1e-2);
    fp.addBlock(makeBlock("a", 0, 0, 2e-3, 2e-3, 1.0));
    fp.addBlock(makeBlock("b", 4e-3, 4e-3, 2e-3, 2e-3, 1.0));
    EXPECT_DOUBLE_EQ(fp.wireDistance("a", "b"), 8e-3);
    EXPECT_DOUBLE_EQ(fp.wireDistance("b", "a"), 8e-3);
}

TEST(Floorplan, StackedDensitySumsAcrossDies)
{
    Floorplan fp("t", 1e-2, 1e-2);
    fp.addBlock(makeBlock("a", 0, 0, 2e-3, 2e-3, 4.0, 0));   // 1 W/mm2
    fp.addBlock(makeBlock("b", 0, 0, 2e-3, 2e-3, 8.0, 1));   // 2 W/mm2
    EXPECT_NEAR(fp.peakStackedDensity(100), 3e6, 0.1e6);
}

TEST(Floorplan, NetsRequireExistingBlocks)
{
    Floorplan fp("t", 1e-2, 1e-2);
    fp.addBlock(makeBlock("a", 0, 0, 1e-3, 1e-3, 1.0));
    EXPECT_THROW(fp.addNet({"a", "ghost", 1.0}), std::runtime_error);
}

TEST(WireModel, PipeStages)
{
    WireModel wire;
    wire.reach_per_cycle = 2.5e-3;
    EXPECT_EQ(wire.pipeStages(2.4e-3), 0u);
    EXPECT_EQ(wire.pipeStages(2.6e-3), 1u);
    EXPECT_EQ(wire.pipeStages(5.4e-3), 2u);
}

// ---------------------------------------------------------------------
// reference floorplans
// ---------------------------------------------------------------------

TEST(Reference, Core2DuoMatchesPaperBudget)
{
    Floorplan fp = makeCore2Duo();
    EXPECT_NEAR(fp.totalPower(), 92.0, 1e-9);
    EXPECT_TRUE(fp.validateNoOverlap());
    // The 4 MB L2 occupies ~50% of the die.
    const Block &l2 = fp.block("l2");
    EXPECT_NEAR(l2.area() / (fp.width() * fp.height()), 0.5, 0.02);
    EXPECT_NEAR(l2.power, 7.0, 1e-9);
    // Two mirrored cores.
    EXPECT_NO_THROW(fp.block("core0.fp"));
    EXPECT_NO_THROW(fp.block("core1.fp"));
}

TEST(Reference, Core2CoresAreMirrored)
{
    Floorplan fp = makeCore2Duo();
    const Block &fp0 = fp.block("core0.fp");
    const Block &fp1 = fp.block("core1.fp");
    EXPECT_NEAR(fp0.centerX() + fp1.centerX(), fp.width(), 1e-9);
    EXPECT_DOUBLE_EQ(fp0.y, fp1.y);
    EXPECT_DOUBLE_EQ(fp0.power, fp1.power);
}

TEST(Reference, Base32DieVariants)
{
    Floorplan shrunk = makeCore2BaseDie32M();
    EXPECT_LT(shrunk.height(), makeCore2Duo().height());
    EXPECT_TRUE(shrunk.validateNoOverlap());
    EXPECT_NO_THROW(shrunk.block("dram_tags"));

    Floorplan full = makeCore2BaseDie32MKeepOutline();
    EXPECT_DOUBLE_EQ(full.height(), makeCore2Duo().height());
    // Both drop the 7 W SRAM and add 3.5 W of tags.
    EXPECT_NEAR(full.totalPower(), 92.0 - 7.0 + 3.5, 1e-9);
    EXPECT_NEAR(shrunk.totalPower(), full.totalPower(), 1e-9);
}

TEST(Reference, CacheDieAndStacking)
{
    Floorplan base = makeCore2Duo();
    Floorplan cache = makeCacheDie(base, "sram8m", 14.0);
    EXPECT_DOUBLE_EQ(cache.totalPower(), 14.0);
    EXPECT_EQ(cache.blocks()[0].die, 1u);

    Floorplan combined = stackFloorplans(base, cache, "both");
    EXPECT_NEAR(combined.totalPower(), 106.0, 1e-9);
    EXPECT_DOUBLE_EQ(combined.diePower(1), 14.0);
}

TEST(Reference, StackingMismatchedOutlinesIsFatal)
{
    Floorplan base = makeCore2Duo();
    Floorplan other("small", 1e-3, 1e-3);
    other.addBlock(makeBlock("x", 0, 0, 1e-3, 1e-3, 1.0));
    EXPECT_THROW(stackFloorplans(base, other, "bad"),
                 std::runtime_error);
}

TEST(Reference, Pentium4Budgets)
{
    Floorplan p2d = makePentium4Planar();
    EXPECT_NEAR(p2d.totalPower(), 147.0, 1e-9);
    EXPECT_TRUE(p2d.validateNoOverlap());
    EXPECT_GE(p2d.nets().size(), 10u);

    Floorplan p3d = makePentium43D(0.85);
    EXPECT_NEAR(p3d.totalPower(), 147.0 * 0.85, 1e-6);
    EXPECT_TRUE(p3d.validateNoOverlap());
    // Half the footprint (within packing slack).
    double area2d = p2d.width() * p2d.height();
    double area3d = p3d.width() * p3d.height();
    EXPECT_NEAR(area3d / area2d, 0.5, 0.05);
}

TEST(Reference, Pentium43DShortensCriticalWires)
{
    Floorplan p2d = makePentium4Planar();
    Floorplan p3d = makePentium43D();
    // Load-to-use: D$ folds over the functional units.
    EXPECT_LT(p3d.wireDistance("dcache", "falu"),
              0.5 * p2d.wireDistance("dcache", "falu"));
    // FP register read: SIMD no longer separates RF and FP.
    EXPECT_LT(p3d.wireDistance("rf", "fp"),
              0.5 * p2d.wireDistance("rf", "fp"));
}

TEST(Reference, Pentium4DensityRatios)
{
    Floorplan p2d = makePentium4Planar();
    double planar = p2d.peakBlockDensity(0);

    double repaired =
        makePentium43D(0.85).peakStackedDensity() / planar;
    EXPECT_GT(repaired, 1.1);
    EXPECT_LT(repaired, 1.55);   // paper: ~1.3x

    double worst =
        makePentium43DWorstCase().peakStackedDensity() / planar;
    EXPECT_GT(worst, 1.8);       // paper: ~2x
    EXPECT_LT(worst, 2.3);
}

// ---------------------------------------------------------------------
// planner
// ---------------------------------------------------------------------

TEST(Planner, ProducesLegalTwoDiePlan)
{
    Floorplan p2d = makePentium4Planar();
    PlannerParams params;
    params.iterations = 1500;
    PlannerResult result = planStacking(p2d, params);

    // Oversize blocks (the full-width L2 strip, the tall misc
    // column) may be split during the fold.
    EXPECT_GE(result.plan.blocks().size(), p2d.blocks().size());
    EXPECT_TRUE(result.plan.validateNoOverlap());
    EXPECT_NEAR(result.plan.totalPower(), p2d.totalPower(), 1e-6);
    // Both dies used.
    EXPECT_GT(result.plan.dieArea(0), 0.0);
    EXPECT_GT(result.plan.dieArea(1), 0.0);
    // Roughly half footprint.
    double ratio = (result.plan.width() * result.plan.height()) /
                   (p2d.width() * p2d.height());
    EXPECT_NEAR(ratio, 0.56, 0.12);
}

TEST(Planner, ShortensWirelength)
{
    Floorplan p2d = makePentium4Planar();
    PlannerParams params;
    params.iterations = 3000;
    PlannerResult result = planStacking(p2d, params);
    EXPECT_LT(result.wirelength, result.planar_wirelength);
}

TEST(Planner, DensityRepairBoundsPeak)
{
    Floorplan p2d = makePentium4Planar();
    PlannerParams repair;
    repair.iterations = 3000;
    repair.beta_density = 10.0;
    PlannerResult repaired = planStacking(p2d, repair);
    // The repaired plan respects (approximately) the density cap.
    EXPECT_LT(repaired.peak_density_ratio,
              repair.density_cap_ratio + 0.35);
}

TEST(Planner, DeterministicPerSeed)
{
    Floorplan p2d = makePentium4Planar();
    PlannerParams params;
    params.iterations = 500;
    PlannerResult a = planStacking(p2d, params);
    PlannerResult b = planStacking(p2d, params);
    EXPECT_DOUBLE_EQ(a.wirelength, b.wirelength);
    EXPECT_EQ(a.accepted_moves, b.accepted_moves);
}

TEST(Planner, TooFewBlocksIsFatal)
{
    Floorplan tiny("tiny", 1e-2, 1e-2);
    tiny.addBlock(makeBlock("only", 0, 0, 1e-3, 1e-3, 1.0));
    EXPECT_THROW(planStacking(tiny), std::runtime_error);
}
