/**
 * @file
 * Unit tests for the memory hierarchy: cache tags, DRAM cache and
 * bank engine, the bus, hierarchy composition, and the
 * dependency-honoring trace engine.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "mem/bus.hh"
#include "mem/cache.hh"
#include "mem/dram.hh"
#include "mem/engine.hh"
#include "mem/hierarchy.hh"
#include "common/random.hh"
#include "trace/writer.hh"
#include "workloads/registry.hh"

using namespace stack3d;
using namespace stack3d::mem;

// ---------------------------------------------------------------------
// Cache
// ---------------------------------------------------------------------

namespace {

CacheParams
tinyCache()
{
    // 8 sets x 2 ways x 64 B = 1 KB.
    return CacheParams{1024, 64, 2, 4};
}

} // anonymous namespace

TEST(Cache, MissThenHit)
{
    Cache cache(tinyCache(), "t");
    EXPECT_FALSE(cache.access(0x1000, false).hit);
    EXPECT_TRUE(cache.access(0x1000, false).hit);
    EXPECT_TRUE(cache.access(0x1004, false).hit);   // same line
    EXPECT_EQ(cache.counters().hits, 2u);
    EXPECT_EQ(cache.counters().misses, 1u);
}

TEST(Cache, LruEvictsOldest)
{
    Cache cache(tinyCache(), "t");
    // Three lines in the same set (set stride = 8 sets * 64 B).
    Addr a = 0x0000, b = 0x0200, c = 0x0400;
    cache.access(a, false);
    cache.access(b, false);
    cache.access(a, false);           // refresh a
    auto res = cache.access(c, false);   // evicts b (LRU)
    EXPECT_TRUE(res.evicted);
    EXPECT_EQ(res.victim_addr, b);
    EXPECT_TRUE(cache.probe(a));
    EXPECT_FALSE(cache.probe(b));
}

TEST(Cache, DirtyVictimSignalsWriteback)
{
    Cache cache(tinyCache(), "t");
    cache.access(0x0000, true);    // store: dirty
    cache.access(0x0200, false);
    auto res = cache.access(0x0400, false);
    EXPECT_TRUE(res.evicted);
    EXPECT_TRUE(res.writeback);
    EXPECT_EQ(res.victim_addr, 0x0000u);
    EXPECT_EQ(cache.counters().writebacks, 1u);
}

TEST(Cache, CleanVictimNoWriteback)
{
    Cache cache(tinyCache(), "t");
    cache.access(0x0000, false);
    cache.access(0x0200, false);
    auto res = cache.access(0x0400, false);
    EXPECT_TRUE(res.evicted);
    EXPECT_FALSE(res.writeback);
}

TEST(Cache, InvalidateReportsDirtiness)
{
    Cache cache(tinyCache(), "t");
    cache.access(0x1000, true);
    EXPECT_TRUE(cache.invalidate(0x1000));
    EXPECT_FALSE(cache.probe(0x1000));
    EXPECT_FALSE(cache.invalidate(0x1000));   // already gone
}

TEST(Cache, MarkDirtyOnlyIfPresent)
{
    Cache cache(tinyCache(), "t");
    EXPECT_FALSE(cache.markDirty(0x1000));
    cache.access(0x1000, false);
    EXPECT_TRUE(cache.markDirty(0x1000));
    cache.access(0x1200, false);
    auto res = cache.access(0x1400, false);
    EXPECT_TRUE(res.writeback);   // the marked line drained dirty
}

TEST(Cache, PresenceBits)
{
    Cache cache(tinyCache(), "t");
    cache.access(0x1000, false);
    cache.setPresence(0x1000, 0);
    cache.setPresence(0x1000, 1);
    EXPECT_EQ(cache.presence(0x1000), 0x3);
    cache.clearPresence(0x1000, 0);
    EXPECT_EQ(cache.presence(0x1000), 0x2);
    EXPECT_EQ(cache.presence(0x9999000), 0);   // absent line
}

TEST(Cache, FlushDropsEverything)
{
    Cache cache(tinyCache(), "t");
    cache.access(0x1000, true);
    cache.flush();
    EXPECT_FALSE(cache.probe(0x1000));
}

TEST(Cache, Table3ConfigurationsHavePowerOfTwoSets)
{
    // 4 MB 16-way and 12 MB 24-way both give power-of-two sets.
    Cache l2_4m(CacheParams{units::fromMiB(4), 64, 16, 16}, "l2");
    EXPECT_EQ(l2_4m.numSets(), 4096u);
    Cache l2_12m(CacheParams{units::fromMiB(12), 64, 24, 24}, "l2");
    EXPECT_EQ(l2_12m.numSets(), 8192u);
}

TEST(Cache, BadGeometryIsFatal)
{
    // 12 MB 16-way -> 12288 sets: not a power of two.
    EXPECT_THROW(Cache(CacheParams{units::fromMiB(12), 64, 16, 24},
                       "bad"),
                 std::runtime_error);
    EXPECT_THROW(Cache(CacheParams{0, 64, 8, 4}, "zero"),
                 std::runtime_error);
}

// ---------------------------------------------------------------------
// DRAM cache array
// ---------------------------------------------------------------------

namespace {

DramCacheParams
tinyDramCache()
{
    DramCacheParams p;
    p.size_bytes = 64 * 1024;   // 16 sets x 8 ways x 512 B
    p.assoc = 8;
    return p;
}

} // anonymous namespace

TEST(DramCache, SectorFillSemantics)
{
    DramCacheArray dc(tinyDramCache(), "t");
    // First access: page miss.
    auto r1 = dc.access(0x10000, false);
    EXPECT_FALSE(r1.page_hit);
    EXPECT_FALSE(r1.sector_hit);
    // Same sector: full hit.
    auto r2 = dc.access(0x10020, false);
    EXPECT_TRUE(r2.page_hit);
    EXPECT_TRUE(r2.sector_hit);
    // Different sector of the same page: sector miss.
    auto r3 = dc.access(0x10040, false);
    EXPECT_TRUE(r3.page_hit);
    EXPECT_FALSE(r3.sector_hit);
    EXPECT_EQ(dc.counters().sector_misses, 1u);
    EXPECT_EQ(dc.counters().page_misses, 1u);
}

TEST(DramCache, EvictionCountsDirtySectors)
{
    DramCacheParams p = tinyDramCache();
    p.assoc = 1;   // direct-mapped pages for forced eviction
    DramCacheArray dc(p, "t");

    // Direct-mapped: 128 sets x 512 B = 64 KB set stride.
    dc.access(0x0000, true);    // dirty sector 0
    dc.access(0x0040, true);    // dirty sector 1
    dc.access(0x0080, false);   // clean sector 2
    auto res = dc.access(0x10000, false);   // same set, evicts
    EXPECT_TRUE(res.evicted);
    EXPECT_EQ(res.victim_page, 0x0000u);
    EXPECT_EQ(res.victim_dirty_sectors, 2u);
}

TEST(DramCache, MarkSectorDirtyRequiresResidence)
{
    DramCacheArray dc(tinyDramCache(), "t");
    EXPECT_FALSE(dc.markSectorDirty(0x10000));
    dc.access(0x10000, false);
    EXPECT_TRUE(dc.markSectorDirty(0x10000));
    // A valid page but unfetched sector is not resident.
    EXPECT_FALSE(dc.markSectorDirty(0x10040));
}

TEST(DramCache, ProbeTracksSectors)
{
    DramCacheArray dc(tinyDramCache(), "t");
    EXPECT_FALSE(dc.probe(0x10000));
    dc.access(0x10000, false);
    EXPECT_TRUE(dc.probe(0x10000));
    EXPECT_FALSE(dc.probe(0x10040));   // other sector
}

TEST(DramCache, PaperGeometries)
{
    DramCacheParams p32;
    p32.size_bytes = units::fromMiB(32);
    EXPECT_NO_THROW(DramCacheArray(p32, "dc32"));
    DramCacheParams p64;
    p64.size_bytes = units::fromMiB(64);
    DramCacheArray dc(p64, "dc64");
    EXPECT_EQ(dc.sectorsPerPage(), 8u);
}

// ---------------------------------------------------------------------
// DRAM bank engine
// ---------------------------------------------------------------------

TEST(DramBanks, PageHitMissConflictTiming)
{
    DramTiming t;
    t.idle_close = 0;   // disable auto-close for exact math
    DramBankEngine banks(16, 512, t, "t");

    // Cold access: page miss = open + read.
    EXPECT_EQ(banks.access(0x0000, 100), 100 + 50 + 50);
    // Same page: hit = read only (bank frees after burst).
    EXPECT_EQ(banks.access(0x0040, 300), 300 + 50);
    // Same bank (16 pages later), different page: conflict.
    Addr other_page = 512 * 16;
    EXPECT_EQ(banks.access(other_page, 600), 600 + 54 + 50 + 50);
    EXPECT_EQ(banks.counters().page_hits, 1u);
    EXPECT_EQ(banks.counters().page_misses, 1u);
    EXPECT_EQ(banks.counters().page_conflicts, 1u);
}

TEST(DramBanks, BurstOccupancyNotLatency)
{
    DramTiming t;
    t.idle_close = 0;
    DramBankEngine banks(1, 512, t, "t");
    banks.access(0x0000, 0);   // opens page, busy until 50+8
    // A same-page access right after queues behind the burst, not
    // the full CAS latency.
    Cycles second = banks.access(0x0040, 0);
    EXPECT_EQ(second, (50 + 8) + 50);
}

TEST(DramBanks, IdleAutoClose)
{
    DramTiming t;
    t.idle_close = 24;
    DramBankEngine banks(1, 512, t, "t");
    banks.access(0x0000, 0);
    // Long idle: the open page self-precharged, so a different page
    // pays open+read, not precharge+open+read.
    Cycles data = banks.access(0x0200, 10000);
    EXPECT_EQ(data, 10000 + 50 + 50);
    EXPECT_EQ(banks.counters().page_conflicts, 0u);
}

TEST(DramBanks, DemandPriorityBypassesSpeculative)
{
    DramTiming t;
    t.idle_close = 0;
    DramBankEngine banks(1, 512, t, "t");
    // A speculative prefetch books the bank far ahead.
    banks.access(0x0000, 0, /*speculative=*/true);
    banks.access(0x0040, 0, /*speculative=*/true);
    Cycles spec_backlog = banks.busyUntil(0x0000);
    // A demand read does not wait behind the speculative bookings.
    Cycles demand = banks.access(0x0080, 0, /*speculative=*/false);
    EXPECT_LT(demand, spec_backlog + 50);
}

TEST(DramBanks, PipelinedActivateKeepsBankFree)
{
    DramTiming t;
    t.idle_close = 0;
    t.pipelined_activate = true;
    DramBankEngine banks(1, 512, t, "t");
    banks.access(0x0000, 0);           // page miss at t=0
    // Different page, same bank: with pipelined activation the bank
    // frees after just the burst, so the conflict starts at t=burst.
    Cycles data = banks.access(0x0200, 0);
    EXPECT_EQ(data, 8 + 54 + 50 + 50);
}

TEST(DramBanks, AddressesInterleaveAcrossBanks)
{
    DramTiming t;
    DramBankEngine banks(16, 512, t, "t");
    std::set<unsigned> used;
    for (Addr page = 0; page < 16; ++page)
        used.insert(banks.bankIndex(page * 512));
    EXPECT_EQ(used.size(), 16u);
}

// ---------------------------------------------------------------------
// Bus
// ---------------------------------------------------------------------

TEST(Bus, TransfersSerialize)
{
    BusParams p;   // 16 GB/s at 2.4 GHz -> 6.67 B/cycle
    Bus bus(p);
    Cycles first = bus.transfer(64, 0);
    EXPECT_NEAR(double(first), 64.0 / p.bytesPerCycle(), 1.0);
    Cycles second = bus.transfer(64, 0);   // queues behind the first
    EXPECT_NEAR(double(second), 2 * 64.0 / p.bytesPerCycle(), 2.0);
    EXPECT_EQ(bus.totalBytes(), 128u);
    EXPECT_EQ(bus.transactions(), 2u);
}

TEST(Bus, AchievedBandwidthMath)
{
    BusParams p;
    Bus bus(p);
    bus.transfer(16'000'000'000ull, 0);   // 16 GB
    // Over one second of cycles: exactly 16 GB/s.
    Cycles one_second = Cycles(p.core_freq_ghz * 1e9);
    EXPECT_NEAR(bus.achievedGBps(one_second), 16.0, 0.01);
    // 16 GB/s = 128 Gb/s at 20 mW/Gb/s = 2.56 W.
    EXPECT_NEAR(bus.powerWatts(one_second), 2.56, 0.01);
}

TEST(Bus, SpeculativeBytesTracked)
{
    Bus bus(BusParams{});
    bus.transfer(64, 0, false);
    bus.transfer(64, 0, true);
    EXPECT_EQ(bus.speculativeBytes(), 64u);
    EXPECT_EQ(bus.totalBytes(), 128u);
}

// ---------------------------------------------------------------------
// hierarchy params / composition
// ---------------------------------------------------------------------

TEST(HierarchyParams, OptionsMatchFigure7)
{
    auto a = makeHierarchyParams(StackOption::Baseline4MB);
    EXPECT_EQ(a.l2.size_bytes, units::fromMiB(4));
    EXPECT_EQ(a.l2.latency, 16u);
    EXPECT_FALSE(a.usesDramCache());

    auto b = makeHierarchyParams(StackOption::Sram12MB);
    EXPECT_EQ(b.l2.size_bytes, units::fromMiB(12));
    EXPECT_EQ(b.l2.latency, 24u);

    auto c = makeHierarchyParams(StackOption::Dram32MB);
    EXPECT_TRUE(c.usesDramCache());
    EXPECT_EQ(c.dram_cache.size_bytes, units::fromMiB(32));
    EXPECT_EQ(c.dram_cache.page_bytes, 512u);
    EXPECT_EQ(c.dram_cache.sector_bytes, 64u);
    EXPECT_EQ(c.dram_cache.num_banks, 16u);

    auto d = makeHierarchyParams(StackOption::Dram64MB);
    EXPECT_EQ(d.dram_cache.size_bytes, units::fromMiB(64));
    // Tags in the former 4 MB SRAM: slower than option (c)'s.
    EXPECT_GT(d.dram_cache.tag_latency, c.dram_cache.tag_latency);
}

TEST(HierarchyParams, OptionNamesAndCapacities)
{
    EXPECT_STREQ(stackOptionName(StackOption::Baseline4MB), "2D 4MB");
    EXPECT_EQ(stackOptionCapacityMB(StackOption::Dram64MB), 64u);
}

namespace {

/** A hierarchy with the prefetcher off, for exact latency math. */
HierarchyParams
plainParams(StackOption opt)
{
    HierarchyParams p = makeHierarchyParams(opt);
    p.prefetcher.enable = false;
    return p;
}

} // anonymous namespace

TEST(Hierarchy, L1HitLatency)
{
    MemoryHierarchy hier(plainParams(StackOption::Baseline4MB));
    hier.access(0, 0x1000, trace::MemOp::Load, 0);   // cold
    Cycles done = hier.access(0, 0x1000, trace::MemOp::Load, 100);
    EXPECT_EQ(done, 100 + 4);
}

TEST(Hierarchy, L2HitLatency)
{
    MemoryHierarchy hier(plainParams(StackOption::Baseline4MB));
    hier.access(0, 0x1000, trace::MemOp::Load, 0);   // fills L1 + L2
    // Push the line out of cpu0's tiny view by invalidating: use
    // cpu1's access instead; it misses its own L1 but hits L2.
    Cycles done = hier.access(1, 0x1000, trace::MemOp::Load, 1000);
    EXPECT_EQ(done, 1000 + 4 + 16);
}

TEST(Hierarchy, MemoryLatencyNearTable3)
{
    MemoryHierarchy hier(plainParams(StackOption::Baseline4MB));
    Cycles done = hier.access(0, 0x1000, trace::MemOp::Load, 0);
    // L1 (4) + L2 (16) + ~192 main-memory trip.
    EXPECT_GE(done, 4 + 16 + 170u);
    EXPECT_LE(done, 4 + 16 + 260u);
}

TEST(Hierarchy, CoherenceInvalidatesRemoteCopy)
{
    MemoryHierarchy hier(plainParams(StackOption::Baseline4MB));
    hier.access(0, 0x1000, trace::MemOp::Load, 0);
    hier.access(1, 0x1000, trace::MemOp::Load, 500);
    // cpu1 stores: cpu0's copy must be invalidated.
    hier.access(1, 0x1000, trace::MemOp::Store, 1000);
    EXPECT_EQ(hier.counters().coherence_invalidations, 1u);
    // cpu0's next read misses its L1 (hits L2).
    Cycles done = hier.access(0, 0x1000, trace::MemOp::Load, 2000);
    EXPECT_EQ(done, 2000 + 4 + 16);
}

TEST(Hierarchy, DramCacheSectorHitLatency)
{
    HierarchyParams p = plainParams(StackOption::Dram32MB);
    MemoryHierarchy hier(p);
    hier.access(0, 0x1000, trace::MemOp::Load, 0);   // cold fill
    // Fill cpu0's L1 set until 0x1000 evicts? Simpler: cpu1 access
    // hits the DRAM cache sector.
    Cycles done = hier.access(1, 0x1000, trace::MemOp::Load, 5000);
    // L1 4 + tag 12 + d2d + bank (<= pre+open+read) + d2d.
    EXPECT_GE(done, 5000 + 4 + 12 + 50u);
    EXPECT_LE(done, 5000 + 4 + 12 + 2 + 154 + 2u);
}

TEST(Hierarchy, OffDieBytesMatchBusTraffic)
{
    MemoryHierarchy hier(plainParams(StackOption::Baseline4MB));
    Random rng(3);
    for (int i = 0; i < 2000; ++i) {
        hier.access(0, rng.uniformInt(64u << 20) & ~Addr(63),
                    rng.chance(0.3) ? trace::MemOp::Store
                                    : trace::MemOp::Load,
                    Cycles(i) * 10);
    }
    EXPECT_EQ(hier.offDieBytes(), hier.bus().totalBytes());
}

TEST(Hierarchy, PrefetcherCoversStreams)
{
    // A long sequential stream: with the prefetcher, demand misses
    // collapse to the training prefix plus stragglers.
    HierarchyParams with_pf = makeHierarchyParams(
        StackOption::Baseline4MB);
    HierarchyParams no_pf = plainParams(StackOption::Baseline4MB);

    auto run = [](const HierarchyParams &p) {
        MemoryHierarchy hier(p);
        // Pace the stream below the bus bandwidth so prefetches
        // are not throttled by flow control.
        Cycles t = 0;
        for (int i = 0; i < 4000; ++i) {
            hier.access(0, 0x100000 + Addr(i) * 64,
                        trace::MemOp::Load, t);
            t += 16;
        }
        return hier.counters().demand_l1d_misses;
    };

    std::uint64_t misses_pf = run(with_pf);
    std::uint64_t misses_nopf = run(no_pf);
    EXPECT_EQ(misses_nopf, 4000u);
    EXPECT_LT(misses_pf, 400u);
}

TEST(Hierarchy, TooManyCpusIsFatal)
{
    HierarchyParams p = makeHierarchyParams(StackOption::Baseline4MB);
    p.num_cpus = 9;
    EXPECT_THROW(MemoryHierarchy{p}, std::runtime_error);
}

// ---------------------------------------------------------------------
// trace engine
// ---------------------------------------------------------------------

namespace {

trace::TraceBuffer
makeTrace(const std::vector<trace::TraceRecord> &recs)
{
    return trace::TraceBuffer(std::vector<trace::TraceRecord>(recs));
}

trace::TraceRecord
load(Addr addr, std::uint8_t cpu = 0,
     std::uint64_t dep = trace::kNoDep)
{
    trace::TraceRecord r;
    r.addr = addr;
    r.cpu = cpu;
    r.dep = dep;
    return r;
}

} // anonymous namespace

TEST(Engine, EmptyTrace)
{
    MemoryHierarchy hier(plainParams(StackOption::Baseline4MB));
    TraceEngine engine;
    EngineResult res = engine.run(makeTrace({}), hier);
    EXPECT_EQ(res.num_records, 0u);
    EXPECT_EQ(res.total_cycles, 0u);
}

TEST(Engine, DependencySerializesAccesses)
{
    // Two independent loads overlap; two dependent loads serialize.
    auto run = [](bool dependent) {
        MemoryHierarchy hier(plainParams(StackOption::Baseline4MB));
        std::vector<trace::TraceRecord> recs;
        // Addresses map to different main-memory banks so only the
        // trace dependency can serialize them.
        recs.push_back(load(0x1000000));
        recs.push_back(load(0x2001000, 0,
                            dependent ? 0 : trace::kNoDep));
        TraceEngine engine;
        return engine.run(makeTrace(recs), hier).total_cycles;
    };
    Cycles independent = run(false);
    Cycles dependent = run(true);
    // Both miss to memory (~210 cycles); dependent runs them
    // back-to-back.
    EXPECT_GT(dependent, independent + 150);
}

TEST(Engine, IndependentRecordsBypassStalledOnes)
{
    // One memory miss followed by many independent L1-hittable
    // accesses: the stalled record must not block them (the paper's
    // issue rule).
    MemoryHierarchy hier(plainParams(StackOption::Baseline4MB));
    std::vector<trace::TraceRecord> recs;
    recs.push_back(load(0x8000000));                   // miss
    recs.push_back(load(0x8000000, 0, 0));             // dependent
    for (int i = 0; i < 50; ++i)
        recs.push_back(load(0x1000));                  // independent
    // Warm the line 0x1000 first via a pre-access? Keep all cold:
    // the 50 accesses share one line -> one miss, then hits.
    TraceEngine engine;
    EngineResult res = engine.run(makeTrace(recs), hier);
    // Far less than two serialized memory trips + 50 accesses.
    EXPECT_LT(res.total_cycles, 700u);
}

TEST(Engine, HonorDependenciesToggle)
{
    std::vector<trace::TraceRecord> recs;
    std::uint64_t prev = trace::kNoDep;
    for (int i = 0; i < 64; ++i) {
        // Spread across banks so the independent run can overlap.
        recs.push_back(load(Addr(i) * ((1 << 20) + 4096), 0, prev));
        prev = std::uint64_t(i);
    }
    auto cycles = [&](bool honor) {
        MemoryHierarchy hier(plainParams(StackOption::Baseline4MB));
        EngineParams ep;
        ep.honor_dependencies = honor;
        return TraceEngine(ep).run(makeTrace(recs), hier).total_cycles;
    };
    EXPECT_GT(cycles(true), cycles(false) * 3);
}

TEST(Engine, IssueWidthBoundsThroughput)
{
    // 1000 L1-hitting accesses on one cpu: at width 1 that is at
    // least 1000 cycles; at width 2, roughly half.
    std::vector<trace::TraceRecord> recs;
    for (int i = 0; i < 1001; ++i)
        recs.push_back(load(0x1000));
    auto cycles = [&](unsigned width) {
        MemoryHierarchy hier(plainParams(StackOption::Baseline4MB));
        EngineParams ep;
        ep.issue_width = width;
        ep.warmup_fraction = 0.0;
        return TraceEngine(ep).run(makeTrace(recs), hier).total_cycles;
    };
    Cycles w1 = cycles(1);
    Cycles w2 = cycles(2);
    EXPECT_GE(w1, 1000u);
    EXPECT_LE(w1, 1300u);
    EXPECT_LT(w2, w1 * 6 / 10);
}

TEST(Engine, CpmaIsCyclesOverRecords)
{
    std::vector<trace::TraceRecord> recs;
    for (int i = 0; i < 100; ++i)
        recs.push_back(load(0x1000));
    MemoryHierarchy hier(plainParams(StackOption::Baseline4MB));
    EngineParams ep;
    ep.warmup_fraction = 0.0;
    EngineResult res = TraceEngine(ep).run(makeTrace(recs), hier);
    EXPECT_DOUBLE_EQ(res.cpma,
                     double(res.total_cycles) / res.num_records);
}

TEST(Engine, WarmupExcludedFromStats)
{
    // A trace whose first half misses everywhere and second half
    // hits: with warm-up 0.5 the CPMA reflects only the hits.
    std::vector<trace::TraceRecord> recs;
    for (int i = 0; i < 500; ++i)
        recs.push_back(load(Addr(i) * 64));
    for (int i = 0; i < 500; ++i)
        recs.push_back(load(Addr(i) * 64));
    auto cpma = [&](double warmup) {
        MemoryHierarchy hier(plainParams(StackOption::Baseline4MB));
        EngineParams ep;
        ep.warmup_fraction = warmup;
        return TraceEngine(ep).run(makeTrace(recs), hier).cpma;
    };
    EXPECT_LT(cpma(0.5), cpma(0.0) * 0.7);
}

TEST(Engine, TwoCpusRunInParallel)
{
    std::vector<trace::TraceRecord> recs;
    for (int i = 0; i < 400; ++i) {
        recs.push_back(load(0x1000, 0));
        recs.push_back(load(0x2000, 1));
    }
    MemoryHierarchy hier(plainParams(StackOption::Baseline4MB));
    EngineParams ep;
    ep.warmup_fraction = 0.0;
    EngineResult res = TraceEngine(ep).run(makeTrace(recs), hier);
    // 800 records over 2 cpus at 1/cycle each: ~400 cycles, not 800.
    EXPECT_LT(res.total_cycles, 520u);
    EXPECT_GE(res.total_cycles, 400u);
}

TEST(Engine, UnknownCpuIsFatal)
{
    std::vector<trace::TraceRecord> recs;
    recs.push_back(load(0x1000, 5));
    MemoryHierarchy hier(plainParams(StackOption::Baseline4MB));
    TraceEngine engine;
    EXPECT_THROW(engine.run(makeTrace(recs), hier),
                 std::runtime_error);
}

TEST(Engine, DeterministicResults)
{
    trace::ThreadTracer tracer(0);
    Random rng(3);
    trace::RecordId prev = trace::kNone;
    for (int i = 0; i < 5000; ++i) {
        Addr a = rng.uniformInt(8u << 20) & ~Addr(7);
        prev = rng.chance(0.3) ? tracer.load(a, 0x1, prev)
                               : tracer.load(a, 0x1);
    }
    trace::TraceBuffer buf(tracer.take());
    auto run = [&]() {
        MemoryHierarchy hier(
            makeHierarchyParams(StackOption::Dram32MB));
        return TraceEngine().run(buf, hier).total_cycles;
    };
    EXPECT_EQ(run(), run());
}

TEST(Hierarchy, DumpStatsListsAllSubsystems)
{
    MemoryHierarchy hier(
        makeHierarchyParams(StackOption::Dram32MB));
    Random rng(7);
    for (int i = 0; i < 500; ++i) {
        hier.access(0, rng.uniformInt(64u << 20) & ~Addr(63),
                    trace::MemOp::Load, Cycles(i) * 8);
    }
    std::ostringstream os;
    hier.dumpStats(os);
    std::string out = os.str();
    for (const char *key :
         {"hierarchy.accesses", "hierarchy.l1d0.hits",
          "hierarchy.dram_cache.page_misses",
          "hierarchy.dram_banks.page_hits", "hierarchy.bus.bytes",
          "hierarchy.memory.reads"})
        EXPECT_NE(out.find(key), std::string::npos) << key;
}

// ---------------------------------------------------------------------
// reference-model property tests
// ---------------------------------------------------------------------

namespace {

/** A deliberately naive LRU set-associative reference model. */
class ReferenceCache
{
  public:
    ReferenceCache(std::uint64_t sets, unsigned assoc, unsigned shift)
        : _sets(sets), _assoc(assoc), _shift(shift),
          _lines(sets * assoc)
    {
    }

    bool
    access(Addr addr)
    {
        Addr tag = addr >> _shift;
        std::uint64_t set = tag & (_sets - 1);
        auto *base = &_lines[set * _assoc];
        ++_tick;
        for (unsigned w = 0; w < _assoc; ++w) {
            if (base[w].valid && base[w].tag == tag) {
                base[w].stamp = _tick;
                return true;
            }
        }
        unsigned victim = 0;
        for (unsigned w = 0; w < _assoc; ++w) {
            if (!base[w].valid) {
                victim = w;
                break;
            }
            if (base[w].stamp < base[victim].stamp)
                victim = w;
        }
        base[victim] = {tag, _tick, true};
        return false;
    }

  private:
    struct Line
    {
        Addr tag = 0;
        std::uint64_t stamp = 0;
        bool valid = false;
    };
    std::uint64_t _sets;
    unsigned _assoc;
    unsigned _shift;
    std::vector<Line> _lines;
    std::uint64_t _tick = 0;
};

} // anonymous namespace

class CacheReferenceTest
    : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(CacheReferenceTest, HitMissSequenceMatchesNaiveLru)
{
    CacheParams params{8192, 64, 4, 4};   // 32 sets x 4 ways
    Cache cache(params, "dut");
    ReferenceCache ref(32, 4, 6);

    Random rng(GetParam());
    for (int i = 0; i < 20000; ++i) {
        // Mix of local and far addresses for realistic set churn.
        Addr addr = rng.chance(0.7)
                        ? rng.uniformInt(16 << 10)
                        : rng.uniformInt(1 << 20);
        addr &= ~Addr(63);
        bool dut_hit = cache.access(addr, rng.chance(0.3)).hit;
        bool ref_hit = ref.access(addr);
        ASSERT_EQ(dut_hit, ref_hit) << "at access " << i;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CacheReferenceTest,
                         ::testing::Values(1, 7, 42, 1234, 99999));

class DramCacheCapacityTest
    : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(DramCacheCapacityTest, WorkingSetWithinCapacityAlwaysHits)
{
    // Touch a working set that fits, loop over it: after the cold
    // pass everything must hit (page-LRU cannot thrash a fitting,
    // uniformly revisited set).
    DramCacheParams p;
    p.size_bytes = 256 * 1024;   // 64 sets x 8 ways x 512 B
    DramCacheArray dc(p, "dut");

    std::uint64_t ws_pages = GetParam();   // <= 8 ways x 64 sets
    for (unsigned pass = 0; pass < 4; ++pass) {
        for (std::uint64_t pg = 0; pg < ws_pages; ++pg) {
            auto res = dc.access(pg * 512, false);
            if (pass > 0) {
                ASSERT_TRUE(res.page_hit) << "page " << pg;
                ASSERT_TRUE(res.sector_hit);
            }
        }
    }
    EXPECT_EQ(dc.counters().page_misses, ws_pages);
}

INSTANTIATE_TEST_SUITE_P(Sizes, DramCacheCapacityTest,
                         ::testing::Values(8, 64, 256, 512));

class EngineOptionOrderTest
    : public ::testing::TestWithParam<const char *>
{
};

TEST_P(EngineOptionOrderTest, LargerCacheNeverMuchWorse)
{
    // Across every kernel, CPMA at a larger capacity stays within a
    // small tolerance of the smaller SRAM option (latency grows with
    // capacity, so tiny regressions are physical; collapses are not).
    workloads::WorkloadConfig cfg;
    cfg.records_per_thread = 150000;
    cfg.scale = 0.35;
    trace::TraceBuffer buf =
        workloads::makeRmsKernel(GetParam())->generate(cfg);

    double cpma[4];
    int i = 0;
    for (auto opt : {StackOption::Baseline4MB, StackOption::Sram12MB,
                     StackOption::Dram32MB, StackOption::Dram64MB}) {
        MemoryHierarchy hier(makeHierarchyParams(opt));
        TraceEngine engine;
        cpma[i++] = engine.run(buf, hier).cpma;
    }
    EXPECT_LT(cpma[1], cpma[0] * 1.15) << "12MB vs 4MB";
    EXPECT_LT(cpma[2], cpma[1] * 1.35) << "32MB vs 12MB";
    EXPECT_LT(cpma[3], cpma[2] * 1.15) << "64MB vs 32MB";
}

INSTANTIATE_TEST_SUITE_P(
    Kernels, EngineOptionOrderTest,
    ::testing::Values("conj", "dSym", "gauss", "pcg", "sMVM", "sSym",
                      "sTrans", "sAVDF", "sAVIF", "sUS", "svd",
                      "svm"));
