/**
 * @file
 * Thermal explorer: build a custom die stack, attach power, and
 * inspect the temperature field — a playground for the 3D thermal
 * solver.
 *
 * Usage:
 *   thermal_explorer [--watts W] [--stacked-watts W2] [--die MM]
 *                    [--dram] [--transient SECONDS] [shared flags]
 *   thermal_explorer --stacks [shared flags]
 *   (see core::BenchCli for --threads/--trace-out/--stats-json/...)
 *
 * Solves a uniformly powered die (planar, or with a second stacked
 * die) in the calibrated desktop package, prints per-layer peak
 * temperatures, and renders the active-layer heat map. With
 * --stacks, instead runs the Figure 8 four-option stack comparison
 * through the unified Run/Report API with live progress.
 */

#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>

#include "core/cli.hh"
#include "core/thermal_study.hh"
#include "thermal/render.hh"
#include "thermal/solver.hh"
#include "thermal/stacks.hh"
#include "thermal/transient.hh"

using namespace stack3d;
using namespace stack3d::thermal;

namespace {

int
runStacksMode(core::BenchCli &cli)
{
    core::RunOptions &opts = cli.options;
    core::ConsoleProgressSink sink(std::cout);
    if (!cli.quiet())
        opts.progress = &sink;

    // Explorer default: a coarser grid than the Figure 8 bench for
    // quick qualitative answers.
    core::StackThermalSpec spec;
    spec.die_nx = 36;
    spec.die_ny = 28;

    auto report = core::runStackThermalStudy(opts, spec);
    cli.recordMeta(report.meta);
    if (!cli.quiet()) {
        static const char *names[4] = {"baseline 4M", "+8M SRAM",
                                       "32M DRAM", "64M DRAM"};
        std::printf("\n%-14s %10s %10s\n", "option", "peak C",
                    "delta C");
        double base = report.payload.options[0].peak_c;
        for (int i = 0; i < 4; ++i) {
            std::printf("%-14s %10.2f %+10.2f\n", names[i],
                        report.payload.options[i].peak_c,
                        report.payload.options[i].peak_c - base);
        }
        std::printf("\nwall %.2fs on %u thread(s), serial-equivalent "
                    "%.2fs\n",
                    report.meta.wall_seconds, report.meta.threads_used,
                    report.meta.serial_seconds);
    }
    return cli.finish();
}

} // anonymous namespace

int
realMain(int argc, char **argv)
{
    core::BenchCli cli("thermal_explorer");
    double watts = 80.0;
    double stacked_watts = 0.0;
    double die_mm = 12.0;
    StackedDieType die2 = StackedDieType::None;
    double transient_s = 0.0;
    bool stacks_mode = false;

    for (int i = 1; i < argc; ++i) {
        if (cli.consume(argc, argv, i))
            continue;
        if (std::strcmp(argv[i], "--stacks") == 0)
            stacks_mode = true;
        else if (std::strcmp(argv[i], "--watts") == 0 && i + 1 < argc)
            watts = std::stod(argv[++i]);
        else if (std::strcmp(argv[i], "--stacked-watts") == 0 &&
                 i + 1 < argc) {
            stacked_watts = std::stod(argv[++i]);
            if (die2 == StackedDieType::None)
                die2 = StackedDieType::LogicSram;
        } else if (std::strcmp(argv[i], "--die") == 0 && i + 1 < argc)
            die_mm = std::stod(argv[++i]);
        else if (std::strcmp(argv[i], "--dram") == 0)
            die2 = StackedDieType::Dram;
        else if (std::strcmp(argv[i], "--transient") == 0 &&
                 i + 1 < argc)
            transient_s = std::stod(argv[++i]);
    }

    cli.begin();
    if (stacks_mode)
        return runStacksMode(cli);

    double die = die_mm * 1e-3;
    StackGeometry geom = die2 == StackedDieType::None
                             ? makePlanarStack(die, die)
                             : makeTwoDieStack(die, die, die2);

    const unsigned nx = 48, ny = 48;
    Mesh mesh(geom, nx, ny);

    // Die #1: a uniform background with one concentrated hot block
    // in the centre (a core next to cache-like surroundings).
    PowerMap map1(nx, ny, die, die);
    map1.addUniform(watts * 0.6);
    double c0 = die * 0.4, c1 = die * 0.6;
    map1.addRect(c0, c0, c1, c1, watts * 0.4);
    mesh.setLayerPower(geom.layerIndex("active1"), map1);

    if (die2 != StackedDieType::None) {
        PowerMap map2(nx, ny, die, die);
        map2.addUniform(stacked_watts);
        mesh.setLayerPower(geom.layerIndex("active2"), map2);
    }

    SolveInfo info;
    TemperatureField field = solveSteadyState(mesh, 1e-8, 40000, &info);
    appendSolveCounters(cli.counters(), "thermal.explorer.", info);
    if (!cli.quiet()) {
        std::printf("solved %zu cells in %u CG iterations "
                    "(residual %.2e)\n",
                    mesh.numCells(), info.iterations, info.residual);

        std::printf("\n%-12s %10s %10s\n", "layer", "peak C", "min C");
        for (std::size_t l = 0; l < geom.layers.size(); ++l) {
            std::printf("%-12s %10.2f %10.2f\n",
                        geom.layers[l].name.c_str(),
                        field.layerPeak(unsigned(l)),
                        field.layerMin(unsigned(l)));
        }

        std::printf("\nactive-layer heat map (die #1):\n");
        renderLayerMap(std::cout, field, geom.layerIndex("active1"));
    }

    if (transient_s > 0.0) {
        TransientResult tr =
            solveTransient(mesh, transient_s, transient_s / 60.0);
        cli.counters().set("thermal.transient.time_constant_s",
                           tr.time_constant_s);
        if (!cli.quiet()) {
            std::printf("\ntransient power-on from ambient "
                        "(implicit Euler):\n");
            for (std::size_t k = 0; k < tr.samples.size(); k += 6) {
                std::printf("  t=%6.2fs  peak=%.2f C\n",
                            tr.samples[k].time_s, tr.samples[k].peak_c);
            }
            std::printf("  thermal time constant ~ %.2f s\n",
                        tr.time_constant_s);
        }
    }
    return cli.finish();
}

int
main(int argc, char **argv)
{
    // fatal() throws so user/config errors stay testable; surface them
    // here as a message + exit(1) instead of std::terminate.
    try {
        return realMain(argc, argv);
    } catch (const std::exception &e) {
        std::cerr << e.what() << "\n";
        return 1;
    }
}
