/**
 * @file
 * Quickstart: the smallest end-to-end tour of stack3d.
 *
 * 1. Generate a dependency-annotated two-thread memory trace from an
 *    instrumented RMS kernel (svm, the paper's best case).
 * 2. Run it through the baseline planar hierarchy (4 MB SRAM L2) and
 *    through the 3D-stacked 32 MB DRAM cache, comparing CPMA and
 *    off-die bandwidth.
 * 3. Solve the stacked configuration's thermals and confirm the
 *    peak-temperature increase is negligible.
 *
 * Build and run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */

#include <cstdio>

#include "core/memory_study.hh"
#include "core/thermal_study.hh"

using namespace stack3d;

int
main()
{
    // --- 1. a trace from the instrumented svm kernel ---------------
    auto kernel = workloads::makeRmsKernel("svm");
    workloads::WorkloadConfig wcfg;
    wcfg.records_per_thread = 1500000;   // ~3 working-set sweeps
    trace::TraceBuffer buf = kernel->generate(wcfg);
    std::printf("svm: %zu trace records, footprint %.1f MB\n",
                buf.size(),
                kernel->nominalFootprintBytes(wcfg) / 1048576.0);

    // --- 2. planar baseline vs 3D-stacked 32 MB DRAM cache ---------
    double cpma[2], bw[2];
    const mem::StackOption options[2] = {
        mem::StackOption::Baseline4MB, mem::StackOption::Dram32MB};
    for (int i = 0; i < 2; ++i) {
        mem::MemoryHierarchy hier(mem::makeHierarchyParams(options[i]));
        mem::TraceEngine engine;
        mem::EngineResult res = engine.run(buf, hier);
        cpma[i] = res.cpma;
        bw[i] = res.offdie_gbps;
        std::printf("%-8s CPMA %.3f, off-die %.2f GB/s, "
                    "bus power %.2f W\n",
                    mem::stackOptionName(options[i]), res.cpma,
                    res.offdie_gbps, res.bus_power_w);
    }
    std::printf("=> stacking the 32 MB DRAM cache cuts CPMA %.0f%% "
                "and off-die bandwidth %.1fx\n",
                (1.0 - cpma[1] / cpma[0]) * 100.0, bw[0] / bw[1]);

    // --- 3. and the thermal cost? -----------------------------------
    auto base = floorplan::makeCore2BaseDie32MKeepOutline();
    auto dram = floorplan::makeCacheDie(
        base, "dram32m", floorplan::budgets::stacked_dram_32mb);
    auto combined = floorplan::stackFloorplans(base, dram, "quickstart");

    auto planar_pt = core::solveFloorplanThermals(
        floorplan::makeCore2Duo(), thermal::StackedDieType::None);
    auto stacked_pt = core::solveFloorplanThermals(
        combined, thermal::StackedDieType::Dram);
    std::printf("peak temperature: planar %.2f C -> stacked %.2f C "
                "(delta %+.2f C)\n",
                planar_pt.peak_c, stacked_pt.peak_c,
                stacked_pt.peak_c - planar_pt.peak_c);
    return 0;
}
