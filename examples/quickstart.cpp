/**
 * @file
 * Quickstart: the smallest end-to-end tour of stack3d.
 *
 * 1. Run the memory study for one benchmark (svm, the paper's best
 *    case) through the unified Run/Report API: a core::RunOptions in,
 *    a core::StudyReport out, with progress reported via a
 *    ProgressSink.
 * 2. Compare the planar baseline (4 MB SRAM L2) against the
 *    3D-stacked 32 MB DRAM cache on CPMA and off-die bandwidth.
 * 3. Solve the stacked configuration's thermals and confirm the
 *    peak-temperature increase is negligible.
 *
 * Build and run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */

#include <cstdio>
#include <iostream>

#include "core/cli.hh"
#include "core/memory_study.hh"
#include "core/thermal_study.hh"

using namespace stack3d;

int
main(int argc, char **argv)
{
    // --- 1. the memory study, unified API --------------------------
    // BenchCli supplies the shared observability flags (--threads,
    // --trace-out, --stats-json, --quiet, ...) for free.
    core::BenchCli cli("quickstart");
    for (int i = 1; i < argc; ++i) {
        if (!cli.consume(argc, argv, i)) {
            std::cerr << "usage: quickstart [flags]\n";
            core::BenchCli::printUsage(std::cerr);
            return 1;
        }
    }
    core::RunOptions &opts = cli.options;
    opts.threads = 0;       // one worker per core; results are
                            // bit-identical to a serial run
    opts.depth = 0.25;      // shortened traces for a quick demo
    cli.begin();
    core::ConsoleProgressSink sink(std::cout);
    if (!cli.quiet())
        opts.progress = &sink;

    core::MemoryStudySpec spec;
    spec.benchmarks = {"svm"};

    auto report = core::runMemoryStudy(opts, spec);
    const core::MemoryStudyRow &row = report.payload.rows[0];
    cli.recordMeta(report.meta);
    if (!cli.quiet()) {
        std::printf("svm: %llu trace records, footprint %.1f MB "
                    "(%.2fs wall on %u threads)\n",
                    (unsigned long long)row.records, row.footprint_mb,
                    report.meta.wall_seconds, report.meta.threads_used);

        // --- 2. planar baseline vs 3D-stacked 32 MB DRAM cache -----
        // Figure 5 column order: 4 MB baseline is index 0, 32 MB DRAM
        // is index 2.
        std::printf("%-8s CPMA %.3f, off-die %.2f GB/s, bus %.2f W\n",
                    "4M", row.cpma[0], row.bw_gbps[0],
                    row.bus_power_w[0]);
        std::printf("%-8s CPMA %.3f, off-die %.2f GB/s, bus %.2f W\n",
                    "dram32m", row.cpma[2], row.bw_gbps[2],
                    row.bus_power_w[2]);
        std::printf("=> stacking the 32 MB DRAM cache cuts CPMA "
                    "%.0f%% and off-die bandwidth %.1fx\n",
                    (1.0 - row.cpma[2] / row.cpma[0]) * 100.0,
                    row.bw_gbps[0] / row.bw_gbps[2]);
    }

    // --- 3. and the thermal cost? -----------------------------------
    auto base = floorplan::makeCore2BaseDie32MKeepOutline();
    auto dram = floorplan::makeCacheDie(
        base, "dram32m", floorplan::budgets::stacked_dram_32mb);
    auto combined = floorplan::stackFloorplans(base, dram, "quickstart");

    auto planar_pt = core::solveFloorplanThermals(
        floorplan::makeCore2Duo(), thermal::StackedDieType::None);
    auto stacked_pt = core::solveFloorplanThermals(
        combined, thermal::StackedDieType::Dram);
    thermal::appendSolveCounters(cli.counters(), "thermal.planar.",
                                 planar_pt.solve);
    thermal::appendSolveCounters(cli.counters(), "thermal.stacked.",
                                 stacked_pt.solve);
    if (!cli.quiet()) {
        std::printf("peak temperature: planar %.2f C -> stacked "
                    "%.2f C (delta %+.2f C)\n",
                    planar_pt.peak_c, stacked_pt.peak_c,
                    stacked_pt.peak_c - planar_pt.peak_c);
    }
    return cli.finish();
}
