/**
 * @file
 * Memory+Logic stacking explorer: run any subset of the RMS
 * benchmarks across the four Figure 7 cache organizations and print
 * a Figure 5-style table.
 *
 * Usage:
 *   memory_stacking [shared flags] [benchmark ...]
 *
 *   --depth F   trace-length multiplier (default 0.5 for a fast
 *               demo; 1.0 = the calibrated full budgets)
 *   --quiet     suppress the per-cell progress lines and tables
 *   benchmark   any of: conj dSym gauss pcg sMVM sSym sTrans sAVDF
 *               sAVIF sUS svd svm   (default: gauss pcg svm)
 *   plus the rest of the shared observability flags (--threads,
 *   --seed, --trace-out, --stats-json, ...); see core::BenchCli.
 */

#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>

#include "common/table.hh"
#include "core/cli.hh"
#include "core/memory_study.hh"

using namespace stack3d;

int
realMain(int argc, char **argv)
{
    core::BenchCli cli("memory_stacking");
    core::RunOptions &opts = cli.options;
    opts.depth = 0.5;
    core::MemoryStudySpec spec;
    for (int i = 1; i < argc; ++i) {
        if (!cli.consume(argc, argv, i))
            spec.benchmarks.emplace_back(argv[i]);
    }
    if (spec.benchmarks.empty())
        spec.benchmarks = {"gauss", "pcg", "svm"};
    cli.begin();

    // Unlike the benches, the explorer shows per-cell progress by
    // default — that's the demo.
    core::ConsoleProgressSink sink(std::cout);
    if (!cli.quiet())
        opts.progress = &sink;

    if (!cli.quiet()) {
        std::printf("running %zu benchmark(s) at depth %.2f on %u "
                    "thread(s)...\n",
                    spec.benchmarks.size(), opts.depth,
                    opts.resolvedThreads());
    }
    auto report = core::runMemoryStudy(opts, spec);
    const core::MemoryStudyResult &result = report.payload;
    cli.recordMeta(report.meta);

    TextTable table({"benchmark", "MB", "CPMA 4M", "CPMA 12M",
                     "CPMA 32M", "CPMA 64M", "BW 4M", "BW 32M",
                     "reduction"});
    for (const auto &row : result.rows) {
        table.newRow()
            .cell(row.benchmark)
            .cell(row.footprint_mb, 1)
            .cell(row.cpma[0], 3)
            .cell(row.cpma[1], 3)
            .cell(row.cpma[2], 3)
            .cell(row.cpma[3], 3)
            .cell(row.bw_gbps[0], 2)
            .cell(row.bw_gbps[2], 2)
            .cell((1.0 - row.cpma[2] / row.cpma[0]) * 100.0, 1);
    }
    if (!cli.quiet()) {
        table.print(std::cout);

        std::printf("\n32 MB DRAM cache vs baseline: avg CPMA -%.1f%%, "
                    "best -%.1f%%, BW /%.2f, bus power -%.0f%%\n",
                    result.summary.avg_cpma_reduction_32m * 100.0,
                    result.summary.max_cpma_reduction_32m * 100.0,
                    result.summary.avg_bw_reduction_factor_32m,
                    result.summary.avg_bus_power_reduction_32m * 100.0);
        std::printf("wall %.2fs, serial-equivalent %.2fs (%.2fx)\n",
                    report.meta.wall_seconds, report.meta.serial_seconds,
                    report.meta.speedup());
    }
    return cli.finish();
}

int
main(int argc, char **argv)
{
    // fatal() throws so user/config errors stay testable; surface them
    // here as a message + exit(1) instead of std::terminate.
    try {
        return realMain(argc, argv);
    } catch (const std::exception &e) {
        std::cerr << e.what() << "\n";
        return 1;
    }
}
