/**
 * @file
 * Logic+Logic stacking explorer: evaluate the Pentium 4-class design
 * planar vs folded onto two dies — per-class IPC, the power roll-up,
 * the floorplan wire analysis, and the automatic stacking planner.
 *
 * The pipeline/thermal evaluation runs through the unified
 * core::runLogicStudy Run/Report API with a console ProgressSink.
 *
 * Usage:
 *   logic_stacking [--uops N] [--full-suite] [shared flags]
 *   (see core::BenchCli for --threads/--trace-out/--stats-json/
 *   --quiet/...)
 */

#include <cstdio>
#include <cstring>
#include <iostream>

#include "common/table.hh"
#include "core/cli.hh"
#include "core/logic_study.hh"
#include "floorplan/planner.hh"
#include "floorplan/reference.hh"
#include "power/scaling.hh"

using namespace stack3d;

int
realMain(int argc, char **argv)
{
    core::BenchCli cli("logic_stacking");
    core::RunOptions &opts = cli.options;
    opts.seed = 7;   // the suite's historical default
    core::LogicStudySpec spec;
    spec.suite.uops_per_trace = 60000;
    spec.die_nx = 33;   // explorer default: fast, qualitative
    spec.die_ny = 31;
    for (int i = 1; i < argc; ++i) {
        if (cli.consume(argc, argv, i))
            continue;
        if (std::strcmp(argv[i], "--uops") == 0 && i + 1 < argc)
            spec.suite.uops_per_trace = std::stoull(argv[++i]);
        else if (std::strcmp(argv[i], "--full-suite") == 0)
            spec.suite.full_suite = true;
        else {
            std::cerr << "usage: logic_stacking [--uops N] "
                         "[--full-suite] [flags]\n";
            core::BenchCli::printUsage(std::cerr);
            return 1;
        }
    }
    cli.begin();

    // Like memory_stacking, the explorer shows per-cell progress by
    // default.
    core::ConsoleProgressSink sink(std::cout);
    if (!cli.quiet())
        opts.progress = &sink;

    // ---- IPC + thermals: the unified logic study ----
    if (!cli.quiet()) {
        std::printf("running the logic study (%llu uops/trace, %u "
                    "thread(s))...\n",
                    (unsigned long long)spec.suite.uops_per_trace,
                    opts.resolvedThreads());
    }
    auto report = core::runLogicStudy(opts, spec);
    const core::LogicStudyResult &result = report.payload;
    cli.recordMeta(report.meta);
    const cpu::SuiteResult &planar = result.table4.planar;
    const cpu::SuiteResult &stacked = result.table4.stacked;

    if (!cli.quiet()) {
        TextTable ipc({"class", "planar IPC", "3D IPC", "gain %"});
        for (std::size_t c = 0; c < planar.class_ipc.size(); ++c) {
            double gain = (stacked.class_ipc[c].second /
                               planar.class_ipc[c].second -
                           1.0) * 100.0;
            ipc.newRow()
                .cell(planar.class_ipc[c].first)
                .cell(planar.class_ipc[c].second, 3)
                .cell(stacked.class_ipc[c].second, 3)
                .cell(gain, 1);
        }
        ipc.newRow()
            .cell("geomean")
            .cell(planar.geomean_ipc, 3)
            .cell(stacked.geomean_ipc, 3)
            .cell((stacked.geomean_ipc / planar.geomean_ipc - 1.0) *
                      100.0,
                  1);
        ipc.print(std::cout);

        // ---- power roll-up + Figure 11 thermals ----
        std::printf("\n3D power roll-up: %.1f%% reduction (repeaters, "
                    "repeating latches, clock grid, pipe latches)\n",
                    result.power_saving_3d * 100.0);
        std::printf("Figure 11 peaks: planar %.1f C, 3D %.1f C, "
                    "worst case %.1f C\n",
                    result.fig11.planar.peak_c,
                    result.fig11.stacked.peak_c,
                    result.fig11.worst_case.peak_c);
    }

    // ---- wire analysis of the hand floorplans ----
    auto fp2d = floorplan::makePentium4Planar();
    auto fp3d = floorplan::makePentium43D();
    floorplan::WireModel wire;
    if (!cli.quiet()) {
        std::printf("\nkey wire paths (planar -> 3D, mm and pipe "
                    "stages):\n");
        for (const char *path : {"dcache:falu", "rf:fp"}) {
            std::string s(path);
            auto colon = s.find(':');
            std::string a = s.substr(0, colon), b = s.substr(colon + 1);
            double d2 = fp2d.wireDistance(a, b);
            double d3 = fp3d.wireDistance(a, b);
            std::printf("  %-14s %.2f mm (%u stages) -> %.2f mm "
                        "(%u stages)\n",
                        path, d2 * 1e3, wire.pipeStages(d2), d3 * 1e3,
                        wire.pipeStages(d3));
        }
    }

    // ---- the automatic stacking planner ----
    floorplan::PlannerParams pp;
    auto plan = floorplan::planStacking(fp2d, pp);
    cli.counters().set("planner.peak_density_ratio",
                       plan.peak_density_ratio);
    cli.counters().set("planner.accepted_moves",
                       double(plan.accepted_moves));
    if (!cli.quiet()) {
        std::printf("\nautomatic stacking planner: wirelength %.1f -> "
                    "%.1f mm, peak stacked density %.2fx planar "
                    "(%u moves accepted)\n",
                    plan.planar_wirelength * 1e3, plan.wirelength * 1e3,
                    plan.peak_density_ratio, plan.accepted_moves);
    }
    return cli.finish();
}

int
main(int argc, char **argv)
{
    // fatal() throws so user/config errors stay testable; surface them
    // here as a message + exit(1) instead of std::terminate.
    try {
        return realMain(argc, argv);
    } catch (const std::exception &e) {
        std::cerr << e.what() << "\n";
        return 1;
    }
}
