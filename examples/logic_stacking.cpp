/**
 * @file
 * Logic+Logic stacking explorer: evaluate the Pentium 4-class design
 * planar vs folded onto two dies — per-class IPC, the power roll-up,
 * the floorplan wire analysis, and the automatic stacking planner.
 *
 * Usage:
 *   logic_stacking [--uops N] [--full-suite]
 */

#include <cstdio>
#include <cstring>
#include <iostream>

#include "common/table.hh"
#include "cpu/suite.hh"
#include "floorplan/planner.hh"
#include "floorplan/reference.hh"
#include "power/scaling.hh"

using namespace stack3d;

int
main(int argc, char **argv)
{
    cpu::SuiteOptions opt;
    opt.uops_per_trace = 60000;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--uops") == 0 && i + 1 < argc)
            opt.uops_per_trace = std::stoull(argv[++i]);
        else if (std::strcmp(argv[i], "--full-suite") == 0)
            opt.full_suite = true;
    }

    // ---- IPC: planar vs 3D pipeline ----
    cpu::TraceSuite suite(opt);
    std::printf("simulating %u traces, %llu uops each...\n",
                suite.numTraces(),
                (unsigned long long)opt.uops_per_trace);

    auto planar = suite.run(cpu::PipelineConfig::planar());
    auto stacked = suite.run(cpu::PipelineConfig::stacked3d());

    TextTable ipc({"class", "planar IPC", "3D IPC", "gain %"});
    for (std::size_t c = 0; c < planar.class_ipc.size(); ++c) {
        double gain = (stacked.class_ipc[c].second /
                           planar.class_ipc[c].second -
                       1.0) * 100.0;
        ipc.newRow()
            .cell(planar.class_ipc[c].first)
            .cell(planar.class_ipc[c].second, 3)
            .cell(stacked.class_ipc[c].second, 3)
            .cell(gain, 1);
    }
    ipc.newRow()
        .cell("geomean")
        .cell(planar.geomean_ipc, 3)
        .cell(stacked.geomean_ipc, 3)
        .cell((stacked.geomean_ipc / planar.geomean_ipc - 1.0) * 100.0,
              1);
    ipc.print(std::cout);

    // ---- power roll-up ----
    power::LogicPowerBreakdown breakdown;
    std::printf("\n3D power roll-up: %.1f%% reduction (repeaters, "
                "repeating latches, clock grid, pipe latches)\n",
                (1.0 - breakdown.stackedRelativePower()) * 100.0);

    // ---- wire analysis of the hand floorplans ----
    auto fp2d = floorplan::makePentium4Planar();
    auto fp3d = floorplan::makePentium43D();
    floorplan::WireModel wire;
    std::printf("\nkey wire paths (planar -> 3D, mm and pipe "
                "stages):\n");
    for (const char *path : {"dcache:falu", "rf:fp"}) {
        std::string s(path);
        auto colon = s.find(':');
        std::string a = s.substr(0, colon), b = s.substr(colon + 1);
        double d2 = fp2d.wireDistance(a, b);
        double d3 = fp3d.wireDistance(a, b);
        std::printf("  %-14s %.2f mm (%u stages) -> %.2f mm "
                    "(%u stages)\n",
                    path, d2 * 1e3, wire.pipeStages(d2), d3 * 1e3,
                    wire.pipeStages(d3));
    }

    // ---- the automatic stacking planner ----
    floorplan::PlannerParams pp;
    auto plan = floorplan::planStacking(fp2d, pp);
    std::printf("\nautomatic stacking planner: wirelength %.1f -> "
                "%.1f mm, peak stacked density %.2fx planar "
                "(%u moves accepted)\n",
                plan.planar_wirelength * 1e3, plan.wirelength * 1e3,
                plan.peak_density_ratio, plan.accepted_moves);
    return 0;
}
